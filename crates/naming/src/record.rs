//! Name records and zone files.
//!
//! Following Blockstack's split (§3.1), the chain stores only the *binding*
//! (name → owner key + zone-file hash); the zone file itself — service
//! endpoints, storage pointers — lives off-chain (e.g. in the DHT), fetched
//! by hash and verified against the on-chain commitment.

use agora_crypto::{sha256, Dec, DecodeError, Enc, Hash256};

/// Limits on valid names (Namecoin-like).
pub const MAX_NAME_LEN: usize = 63;

/// Whether a string is a well-formed name: lowercase alphanumerics, dots and
/// dashes, 1–63 chars, no leading/trailing separator.
pub fn valid_name(name: &str) -> bool {
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return false;
    }
    let ok_char = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-';
    if !name.chars().all(ok_char) {
        return false;
    }
    let first = name.chars().next().expect("nonempty");
    let last = name.chars().last().expect("nonempty");
    !matches!(first, '.' | '-') && !matches!(last, '.' | '-')
}

/// An off-chain zone file: where to find the named principal's services.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneFile {
    /// The name this zone file belongs to.
    pub name: String,
    /// The principal's long-term public key fingerprint.
    pub public_key: Hash256,
    /// Service endpoints ("comm=n42", "storage=gaia://...", free-form).
    pub endpoints: Vec<String>,
}

impl ZoneFile {
    /// Canonical encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new()
            .str(&self.name)
            .hash(&self.public_key)
            .u32(self.endpoints.len() as u32);
        for ep in &self.endpoints {
            e = e.str(ep);
        }
        e.done()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<ZoneFile, DecodeError> {
        let mut d = Dec::new(bytes);
        let name = d.str()?;
        let public_key = d.hash()?;
        let n = d.u32()? as usize;
        if n > 1024 {
            return Err(DecodeError::BadLength);
        }
        let mut endpoints = Vec::with_capacity(n);
        for _ in 0..n {
            endpoints.push(d.str()?);
        }
        Ok(ZoneFile {
            name,
            public_key,
            endpoints,
        })
    }

    /// The hash committed on-chain.
    pub fn hash(&self) -> Hash256 {
        sha256(&self.encode())
    }
}

/// A resolved name binding (from any naming scheme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NameRecord {
    /// The name.
    pub name: String,
    /// Owning account (public-key fingerprint).
    pub owner: Hash256,
    /// Hash of the current zone file.
    pub zone_hash: Hash256,
    /// Chain height (or registrar sequence) at registration.
    pub registered_at: u64,
    /// Height/sequence after which the name expires unless renewed.
    pub expires_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_name("alice"));
        assert!(valid_name("alice.id"));
        assert!(valid_name("a-b-c.42"));
        assert!(!valid_name(""));
        assert!(!valid_name("Alice"));
        assert!(!valid_name(".alice"));
        assert!(!valid_name("alice-"));
        assert!(!valid_name("al ice"));
        assert!(!valid_name(&"x".repeat(64)));
        assert!(valid_name(&"x".repeat(63)));
    }

    #[test]
    fn zone_file_round_trip() {
        let z = ZoneFile {
            name: "alice.id".into(),
            public_key: sha256(b"alice-key"),
            endpoints: vec!["comm=n42".into(), "storage=agora://abc".into()],
        };
        let decoded = ZoneFile::decode(&z.encode()).unwrap();
        assert_eq!(decoded, z);
        assert_eq!(decoded.hash(), z.hash());
    }

    #[test]
    fn zone_hash_changes_with_content() {
        let mut z = ZoneFile {
            name: "alice.id".into(),
            public_key: sha256(b"k"),
            endpoints: vec![],
        };
        let h1 = z.hash();
        z.endpoints.push("comm=n1".into());
        assert_ne!(z.hash(), h1);
    }

    #[test]
    fn decode_rejects_absurd_counts() {
        let bytes = Enc::new()
            .str("a")
            .hash(&sha256(b"k"))
            .u32(1_000_000)
            .done();
        assert_eq!(ZoneFile::decode(&bytes), Err(DecodeError::BadLength));
    }
}

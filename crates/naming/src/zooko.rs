//! Zooko's Triangle, evaluated over the implemented schemes.
//!
//! §3.1: "These blockchain-based naming schemes manage to resolve Zooko's
//! Triangle by providing, simultaneously, human-meaningful, secure, and
//! decentralized names." This module scores each implemented naming scheme
//! on the three properties — from the mechanisms, not by assertion — and
//! renders the comparison the paper's argument implies.

/// The naming schemes implemented in this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamingScheme {
    /// Centralized registrar ([`crate::centralized`]).
    CentralRegistrar,
    /// CA-based PKI ([`crate::pki::CertAuthority`]).
    CaPki,
    /// Web of trust ([`crate::pki::WebOfTrust`]).
    WebOfTrust,
    /// Raw public keys as identities (no naming layer at all).
    RawKeys,
    /// Blockchain naming ([`crate::chain_naming`]).
    Blockchain,
}

/// Scores on Zooko's three properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZookoScore {
    /// Names are memorable strings chosen by people.
    pub human_meaningful: bool,
    /// Bindings can't be forged or seized by a single non-owner party
    /// (within the scheme's threat model).
    pub secure: bool,
    /// No single authority controls the namespace.
    pub decentralized: bool,
}

impl NamingScheme {
    /// All schemes.
    pub fn all() -> [NamingScheme; 5] {
        [
            NamingScheme::CentralRegistrar,
            NamingScheme::CaPki,
            NamingScheme::WebOfTrust,
            NamingScheme::RawKeys,
            NamingScheme::Blockchain,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            NamingScheme::CentralRegistrar => "Centralized registrar",
            NamingScheme::CaPki => "CA-based PKI",
            NamingScheme::WebOfTrust => "Web of Trust",
            NamingScheme::RawKeys => "Raw public keys",
            NamingScheme::Blockchain => "Blockchain naming",
        }
    }

    /// Score the scheme. The rationale strings cite the mechanism (and the
    /// test in this crate demonstrating it).
    pub fn score(self) -> (ZookoScore, &'static str) {
        match self {
            NamingScheme::CentralRegistrar => (
                ZookoScore {
                    human_meaningful: true,
                    secure: false,
                    decentralized: false,
                },
                "memorable names, but the operator can seize or censor any of \
                 them (centralized::operator_censorship_is_total)",
            ),
            NamingScheme::CaPki => (
                ZookoScore {
                    human_meaningful: true,
                    secure: false,
                    decentralized: false,
                },
                "memorable names, but one CA compromise mints accepted rogue \
                 bindings (pki::ca_compromise_mints_accepted_rogue_certs)",
            ),
            NamingScheme::WebOfTrust => (
                ZookoScore {
                    human_meaningful: true,
                    secure: false,
                    decentralized: true,
                },
                "no central authority, but Sybil clusters plus one social- \
                 engineered edge defeat verification (pki::wot_sybil_attack...)",
            ),
            NamingScheme::RawKeys => (
                ZookoScore {
                    human_meaningful: false,
                    secure: true,
                    decentralized: true,
                },
                "keys are unforgeable and self-certifying but unmemorable — \
                 the §3.1 usability barrier",
            ),
            NamingScheme::Blockchain => (
                ZookoScore {
                    human_meaningful: true,
                    secure: true,
                    decentralized: true,
                },
                "memorable names, preorder/reveal + chain consensus secure \
                 them, no single authority — at the cost of confirmation \
                 latency and PoW (experiments E1/E9); 51% attacks bound \
                 'secure' (chain_naming + agora-chain attack models)",
            ),
        }
    }
}

/// Render the triangle table.
pub fn render_zooko_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} | {:^10} | {:^7} | {:^13}\n",
        "Scheme", "Meaningful", "Secure", "Decentralized"
    ));
    out.push_str(&format!("{}\n", "-".repeat(64)));
    for s in NamingScheme::all() {
        let (score, _) = s.score();
        let tick = |b: bool| if b { "yes" } else { "no" };
        out.push_str(&format!(
            "{:<24} | {:^10} | {:^7} | {:^13}\n",
            s.label(),
            tick(score.human_meaningful),
            tick(score.secure),
            tick(score.decentralized)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_blockchain_scores_all_three() {
        for s in NamingScheme::all() {
            let (score, rationale) = s.score();
            let all_three = score.human_meaningful && score.secure && score.decentralized;
            assert_eq!(
                all_three,
                s == NamingScheme::Blockchain,
                "{}: {rationale}",
                s.label()
            );
        }
    }

    #[test]
    fn every_other_scheme_gets_exactly_two_or_fewer() {
        for s in NamingScheme::all() {
            if s == NamingScheme::Blockchain {
                continue;
            }
            let (score, _) = s.score();
            let count = [score.human_meaningful, score.secure, score.decentralized]
                .iter()
                .filter(|&&b| b)
                .count();
            assert!(count <= 2, "{} scored {count}", s.label());
        }
    }

    #[test]
    fn table_renders_all_schemes() {
        let t = render_zooko_table();
        for s in NamingScheme::all() {
            assert!(t.contains(s.label()));
        }
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the naming substrate.

use agora_crypto::{sha256, Hash256};
use agora_naming::{valid_name, NameDb, NameOp, NamingRules, ZoneFile};
use agora_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Name ops round-trip the codec for arbitrary field values.
    #[test]
    fn name_ops_round_trip(
        name in "[a-z0-9][a-z0-9.-]{0,40}[a-z0-9]",
        salt in any::<u64>(),
        h in any::<u64>(),
    ) {
        let zone = sha256(&h.to_be_bytes());
        let owner = sha256(b"owner");
        for op in [
            NameOp::Preorder { commitment: zone },
            NameOp::Register { name: name.clone(), salt, zone_hash: zone },
            NameOp::Update { name: name.clone(), zone_hash: zone },
            NameOp::Transfer { name: name.clone(), new_owner: owner },
            NameOp::Renew { name: name.clone() },
            NameOp::Revoke { name: name.clone() },
        ] {
            prop_assert_eq!(NameOp::decode(&op.encode()).expect("round trip"), op);
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn name_op_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = NameOp::decode(&bytes);
    }

    /// Zone files round-trip for arbitrary endpoint sets.
    #[test]
    fn zone_files_round_trip(
        name in "[a-z0-9][a-z0-9.-]{0,30}[a-z0-9]",
        key in any::<u64>(),
        endpoints in proptest::collection::vec("\\PC{0,60}", 0..8),
    ) {
        let z = ZoneFile {
            name,
            public_key: sha256(&key.to_be_bytes()),
            endpoints,
        };
        let decoded = ZoneFile::decode(&z.encode()).expect("round trip");
        prop_assert_eq!(&decoded, &z);
        prop_assert_eq!(decoded.hash(), z.hash());
    }

    /// The NameDb state machine is total (no panics) and safe (names never
    /// owned by anyone who didn't validly register/receive them) under
    /// arbitrary op sequences from two principals.
    #[test]
    fn namedb_safety_under_arbitrary_ops(
        ops in proptest::collection::vec((0u8..6, any::<bool>(), any::<u64>()), 0..60),
    ) {
        let rules = NamingRules {
            preorder_required: true,
            min_preorder_age: 1,
            preorder_ttl: 100,
            expiry_blocks: 1000,
        };
        let alice = sha256(b"prop-alice");
        let mallory = sha256(b"prop-mallory");
        let mut db = NameDb::default();
        let mut height = 1u64;
        // Alice performs a canonical valid registration first.
        let c = NameOp::commitment("the.name", 7, &alice);
        db.apply(NameOp::Preorder { commitment: c }, alice, height, &rules);
        height += 2;
        db.apply(
            NameOp::Register { name: "the.name".into(), salt: 7, zone_hash: sha256(b"z") },
            alice,
            height,
            &rules,
        );
        // Then an arbitrary storm of operations, with Mallory's ops chosen
        // arbitrarily and Alice only issuing renews (never transfers).
        for (kind, is_mallory, x) in ops {
            height += 1;
            let who = if is_mallory { mallory } else { alice };
            let op = match kind {
                0 => NameOp::Preorder { commitment: sha256(&x.to_be_bytes()) },
                1 => NameOp::Register {
                    name: "the.name".into(),
                    salt: x,
                    zone_hash: sha256(b"evil"),
                },
                2 => NameOp::Update { name: "the.name".into(), zone_hash: sha256(&x.to_be_bytes()) },
                3 => {
                    if is_mallory {
                        NameOp::Transfer { name: "the.name".into(), new_owner: mallory }
                    } else {
                        NameOp::Renew { name: "the.name".into() }
                    }
                }
                4 => NameOp::Renew { name: "the.name".into() },
                _ => {
                    if is_mallory {
                        NameOp::Revoke { name: "the.name".into() }
                    } else {
                        NameOp::Renew { name: "the.name".into() }
                    }
                }
            };
            db.apply(op, who, height, &rules);
        }
        // Safety: if the name still resolves, Alice owns it (she never
        // transferred; Mallory's takeover attempts must all have failed).
        if let Some(rec) = db.resolve("the.name", height) {
            prop_assert_eq!(rec.owner, alice);
        }
    }

    /// valid_name is a proper predicate: accepts the documented alphabet,
    /// rejects everything else, never panics on arbitrary strings.
    #[test]
    fn valid_name_total(s in "\\PC{0,80}") {
        let v = valid_name(&s);
        if v {
            prop_assert!(!s.is_empty() && s.len() <= 63);
            prop_assert!(s.chars().all(|c|
                c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));
        }
    }

    /// Commitments are binding: different (name, salt, account) triples
    /// yield different commitments.
    #[test]
    fn commitments_binding(
        n1 in "[a-z]{1,10}", n2 in "[a-z]{1,10}",
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        let a = sha256(b"acct");
        if n1 != n2 || s1 != s2 {
            prop_assert_ne!(
                NameOp::commitment(&n1, s1, &a),
                NameOp::commitment(&n2, s2, &a)
            );
        }
        let b: Hash256 = sha256(b"other");
        prop_assert_ne!(NameOp::commitment(&n1, s1, &a), NameOp::commitment(&n1, s1, &b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Front-running with preorders never succeeds at any priority.
    #[test]
    fn preorder_defence_universal(priority in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let r = agora_naming::front_running_game(true, priority, 200, &mut rng);
        prop_assert_eq!(r.steal_rate, 0.0);
    }
}

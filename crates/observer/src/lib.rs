//! # agora-observer — deterministic observability over sim probes
//!
//! Consumes the `agora-sim` [`probe`](agora_sim::probe) feed — cadence
//! frames of engine state plus named substrate health signals — and turns
//! it into a typed, deterministic record stream: per-interval signal
//! summaries and counter deltas, and anomaly records from four detector
//! families (absolute threshold with hysteresis, demand-surge against a
//! saturated uplink, EWMA z-score, sustained trend). The harness renders
//! the stream as the `OBS_<target>.jsonl` artifact; reactive in-sim
//! policies can subscribe to the same records.
//!
//! Everything here is a pure function of the probe feed, which is itself a
//! pure function of the canonical event order — no wall clock, no
//! thread-dependent state — so observer output is byte-identical at any
//! harness thread count or engine shard count.
//!
//! Detector verdicts are returned to the engine as
//! [`ProbeAnomaly`](agora_sim::ProbeAnomaly) values, which the engine turns
//! into `anomaly.*` metrics counters and (when tracing) trace points
//! causally parented to the event that triggered the sample — that is what
//! makes `--explain anomaly.overload` walk back to the overloading traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use agora_sim::probe::{ProbeAnomaly, ProbeFrame, ProbeSink};
use agora_sim::{NodeId, SimDuration, SimTime};

/// EWMA smoothing factor for the z-score detector's running mean/variance.
const EWMA_ALPHA: f64 = 0.1;

/// Observer tuning. Every field participates in artifact bytes, so changes
/// here are artifact-schema changes.
#[derive(Clone, Debug)]
pub struct ObserverConfig {
    /// Sim-time sampling cadence for frames.
    pub cadence: SimDuration,
    /// Absolute-threshold detector: fire `anomaly.overload` when the
    /// largest per-node uplink backlog reaches this many seconds.
    pub overload_backlog_secs: f64,
    /// Absolute-threshold detector on the `net.uplink_util` signal (the
    /// workload layer's modeled demand-over-uplink factor, reported per
    /// tick): fire `anomaly.overload` when the interval max reaches this.
    /// 1.0 = some serving uplink cannot carry its attributed demand.
    pub overload_util: f64,
    /// Surge detector: fire `anomaly.overload` when the interval's
    /// `workload.demand` total reaches this multiple of its EWMA baseline
    /// *while* `net.uplink_util` is at or above [`overload_util`]. Demand
    /// is schedule-driven and smooth, so the ratio times the onset of a
    /// flash crowd; the saturation gate keeps substrates with headroom
    /// (the centralized server) clean through the same surge.
    ///
    /// [`overload_util`]: ObserverConfig::overload_util
    pub overload_jump: f64,
    /// Demand-bearing frames of EWMA warmup before the surge detector may
    /// fire.
    pub jump_warmup: u32,
    /// Z-score detector: fire `anomaly.zscore` when pending-event count
    /// deviates from its EWMA by at least this many (EWMA) standard
    /// deviations.
    pub zscore_k: f64,
    /// Frames of EWMA warmup before the z-score detector may fire.
    pub zscore_warmup: u32,
    /// Trend detector: fire `anomaly.trend` after this many consecutive
    /// frames of strictly increasing pending-event count.
    pub trend_len: u32,
    /// How many recent values of the triggering signal an anomaly record
    /// carries.
    pub window: usize,
}

impl Default for ObserverConfig {
    fn default() -> ObserverConfig {
        ObserverConfig {
            cadence: SimDuration::from_secs(300),
            overload_backlog_secs: 30.0,
            overload_util: 1.0,
            overload_jump: 2.0,
            jump_warmup: 8,
            zscore_k: 6.0,
            zscore_warmup: 32,
            trend_len: 12,
            window: 8,
        }
    }
}

/// Per-interval summary of one named substrate signal.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSummary {
    /// Signal name (the metric key it annotates, by convention).
    pub name: &'static str,
    /// Samples in the interval.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Largest sample value.
    pub max: f64,
}

/// One rendered probe frame: engine state at a cadence boundary plus
/// everything that accumulated since the previous frame.
#[derive(Clone, Debug)]
pub struct FrameRecord {
    /// Ordinal of the simulation within the observed trial (assigned in
    /// construction order: 0 for the first `Simulation::new`, and so on).
    pub sim: u32,
    /// Simulated time of the frame.
    pub t: SimTime,
    /// Events dispatched so far in this simulation.
    pub events: u64,
    /// Undispatched events currently queued.
    pub pending: u64,
    /// Deepest per-node event queue.
    pub queue_max_depth: u32,
    /// Node holding the deepest queue.
    pub queue_max_node: NodeId,
    /// Nodes with any pending events.
    pub queue_nonzero: u32,
    /// Largest per-node uplink backlog in seconds.
    pub uplink_max_backlog_secs: f64,
    /// Nodes with uplink backlog.
    pub uplink_busy_nodes: u32,
    /// Largest per-node downlink backlog in seconds.
    pub downlink_max_backlog_secs: f64,
    /// Nodes with downlink backlog.
    pub downlink_busy_nodes: u32,
    /// Counter increments since the previous frame, key order, non-zero
    /// deltas only — the per-interval delivery/drop/retry/hedge rates.
    pub deltas: Vec<(String, u64)>,
    /// Substrate signal summaries for the interval, name order.
    pub signals: Vec<SignalSummary>,
}

/// One detector firing.
#[derive(Clone, Debug)]
pub struct AnomalyRecord {
    /// Simulation ordinal (see [`FrameRecord::sim`]).
    pub sim: u32,
    /// Simulated time of the frame that tripped the detector.
    pub t: SimTime,
    /// Anomaly kind — the `anomaly.*` counter/trace key.
    pub kind: &'static str,
    /// The signal the detector watches.
    pub signal: &'static str,
    /// Detector family.
    pub detector: &'static str,
    /// The value that tripped the detector.
    pub value: f64,
    /// Recent values of the watched signal, oldest first, ending with the
    /// triggering value.
    pub window: Vec<f64>,
}

/// The observer's typed output stream, in emission order.
#[derive(Clone, Debug)]
pub enum ObsRecord {
    /// A simulation was constructed under the observed trial.
    SimStart {
        /// Construction-order ordinal.
        ordinal: u32,
        /// The simulation's RNG seed.
        seed: u64,
    },
    /// A cadence frame.
    Frame(FrameRecord),
    /// A detector firing.
    Anomaly(AnomalyRecord),
}

/// End-of-run totals, for the artifact's summary line.
#[derive(Clone, Debug, Default)]
pub struct ObserverSummary {
    /// Simulations observed.
    pub sims: u32,
    /// Frames emitted.
    pub frames: u64,
    /// Detector firings by anomaly kind, key order.
    pub anomalies: BTreeMap<&'static str, u64>,
}

struct Core {
    config: ObserverConfig,
    emit: Box<dyn FnMut(ObsRecord)>,
    next_ordinal: u32,
    frames: u64,
    anomalies: BTreeMap<&'static str, u64>,
}

/// The observer: hands out per-simulation probe sinks that share one
/// record stream and one summary. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Observer {
    core: Rc<RefCell<Core>>,
}

impl Observer {
    /// Create an observer delivering records to `emit` as they happen (the
    /// harness flushes each one to the `OBS_*` artifact immediately, which
    /// is what makes long runs observable mid-flight).
    pub fn new(config: ObserverConfig, emit: Box<dyn FnMut(ObsRecord)>) -> Observer {
        Observer {
            core: Rc::new(RefCell::new(Core {
                config,
                emit,
                next_ordinal: 0,
                frames: 0,
                anomalies: BTreeMap::new(),
            })),
        }
    }

    /// The configured sampling cadence (what the probe factory should
    /// install alongside each sink).
    pub fn cadence(&self) -> SimDuration {
        self.core.borrow().config.cadence
    }

    /// A fresh probe sink for one simulation: detector state starts clean
    /// per sim, the record stream and summary are shared.
    pub fn make_sink(&self) -> Box<dyn ProbeSink> {
        let config = self.core.borrow().config.clone();
        Box::new(SimProbe {
            core: Rc::clone(&self.core),
            config,
            ordinal: 0,
            last_counters: Vec::new(),
            signals: BTreeMap::new(),
            overload_armed: true,
            uplink_window: VecDeque::new(),
            util_armed: true,
            util_window: VecDeque::new(),
            jump_armed: true,
            demand_ewma: 0.0,
            demand_frames: 0,
            demand_window: VecDeque::new(),
            pending_window: VecDeque::new(),
            ewma_mean: 0.0,
            ewma_var: 0.0,
            ewma_frames: 0,
            zscore_armed: true,
            trend_run: 0,
            last_pending: 0,
        })
    }

    /// Totals so far.
    pub fn summary(&self) -> ObserverSummary {
        let core = self.core.borrow();
        ObserverSummary {
            sims: core.next_ordinal,
            frames: core.frames,
            anomalies: core.anomalies.clone(),
        }
    }
}

struct SigAgg {
    count: u64,
    sum: f64,
    max: f64,
}

/// One simulation's probe sink: interval aggregation plus detector state.
struct SimProbe {
    core: Rc<RefCell<Core>>,
    config: ObserverConfig,
    ordinal: u32,
    /// Counter snapshot at the previous frame, for delta computation.
    last_counters: Vec<(String, u64)>,
    /// Signal aggregates accumulating toward the next frame.
    signals: BTreeMap<&'static str, SigAgg>,
    overload_armed: bool,
    uplink_window: VecDeque<f64>,
    util_armed: bool,
    util_window: VecDeque<f64>,
    jump_armed: bool,
    demand_ewma: f64,
    demand_frames: u32,
    demand_window: VecDeque<f64>,
    pending_window: VecDeque<f64>,
    ewma_mean: f64,
    ewma_var: f64,
    ewma_frames: u32,
    zscore_armed: bool,
    trend_run: u32,
    last_pending: u64,
}

impl SimProbe {
    fn push_window(window: &mut VecDeque<f64>, cap: usize, v: f64) {
        if window.len() == cap.max(1) {
            window.pop_front();
        }
        window.push_back(v);
    }

    /// Counter deltas between two key-ordered snapshots (counters are
    /// monotonic, so new-minus-old is the interval's increment). Keys new
    /// in `now` count from zero.
    fn deltas(prev: &[(String, u64)], now: &[(String, u64)]) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let mut pi = 0;
        for (k, v) in now {
            while pi < prev.len() && prev[pi].0.as_str() < k.as_str() {
                pi += 1;
            }
            let before = if pi < prev.len() && prev[pi].0 == *k {
                prev[pi].1
            } else {
                0
            };
            if *v > before {
                out.push((k.clone(), v - before));
            }
        }
        out
    }

    fn fire(
        &mut self,
        t: SimTime,
        (kind, signal, detector): (&'static str, &'static str, &'static str),
        value: f64,
        window: &VecDeque<f64>,
        out: &mut Vec<ProbeAnomaly>,
    ) {
        let mut core = self.core.borrow_mut();
        *core.anomalies.entry(kind).or_insert(0) += 1;
        (core.emit)(ObsRecord::Anomaly(AnomalyRecord {
            sim: self.ordinal,
            t,
            kind,
            signal,
            detector,
            value,
            window: window.iter().copied().collect(),
        }));
        out.push(ProbeAnomaly { kind, value });
    }
}

impl ProbeSink for SimProbe {
    fn on_sim_start(&mut self, seed: u64) {
        let mut core = self.core.borrow_mut();
        self.ordinal = core.next_ordinal;
        core.next_ordinal += 1;
        let ordinal = self.ordinal;
        (core.emit)(ObsRecord::SimStart { ordinal, seed });
    }

    fn on_signal(&mut self, _now: SimTime, _node: NodeId, name: &'static str, value: f64) {
        let agg = self.signals.entry(name).or_insert(SigAgg {
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        });
        agg.count += 1;
        agg.sum += value;
        agg.max = agg.max.max(value);
    }

    fn on_frame(&mut self, frame: &ProbeFrame<'_>) -> Vec<ProbeAnomaly> {
        let snapshot = frame.metrics.snapshot();
        let deltas = Self::deltas(&self.last_counters, &snapshot);
        self.last_counters = snapshot;
        let uplink_util = self.signals.get("net.uplink_util").map(|agg| agg.max);
        let demand = self.signals.get("workload.demand").map(|agg| agg.sum);
        let signals: Vec<SignalSummary> = self
            .signals
            .iter()
            .map(|(name, agg)| SignalSummary {
                name,
                count: agg.count,
                mean: agg.sum / agg.count as f64,
                max: agg.max,
            })
            .collect();
        self.signals.clear();
        {
            let mut core = self.core.borrow_mut();
            core.frames += 1;
            (core.emit)(ObsRecord::Frame(FrameRecord {
                sim: self.ordinal,
                t: frame.now,
                events: frame.events,
                pending: frame.pending,
                queue_max_depth: frame.queue_max_depth,
                queue_max_node: frame.queue_max_node,
                queue_nonzero: frame.queue_nonzero,
                uplink_max_backlog_secs: frame.uplink_max_backlog_secs,
                uplink_busy_nodes: frame.uplink_busy_nodes,
                downlink_max_backlog_secs: frame.downlink_max_backlog_secs,
                downlink_busy_nodes: frame.downlink_busy_nodes,
                deltas,
                signals,
            }));
        }

        let mut out = Vec::new();
        let t = frame.now;
        let win = self.config.window;

        // Threshold detector with hysteresis: fires once at the upward
        // crossing, re-arms only after the backlog falls to half the
        // threshold — onset detection, not a per-frame alarm.
        let uplink = frame.uplink_max_backlog_secs;
        Self::push_window(&mut self.uplink_window, win, uplink);
        if self.overload_armed && uplink >= self.config.overload_backlog_secs {
            self.overload_armed = false;
            let window = std::mem::take(&mut self.uplink_window);
            self.fire(
                t,
                ("anomaly.overload", "net.uplink_backlog_secs", "threshold"),
                uplink,
                &window,
                &mut out,
            );
            self.uplink_window = window;
        } else if !self.overload_armed && uplink < self.config.overload_backlog_secs * 0.5 {
            self.overload_armed = true;
        }

        // Same detector family over the workload layer's modeled
        // demand-over-uplink factor (`net.uplink_util` signal): the
        // interval max crossing 1.0 is flash-crowd onset on substrates
        // whose serving uplinks are consumer-grade. Intervals without the
        // signal leave the detector state untouched.
        if let Some(util) = uplink_util {
            Self::push_window(&mut self.util_window, win, util);
            if self.util_armed && util >= self.config.overload_util {
                self.util_armed = false;
                let window = std::mem::take(&mut self.util_window);
                self.fire(
                    t,
                    ("anomaly.overload", "net.uplink_util", "threshold"),
                    util,
                    &window,
                    &mut out,
                );
                self.util_window = window;
            } else if !self.util_armed && util < self.config.overload_util * 0.5 {
                self.util_armed = true;
            }
        }

        // Surge detector: the interval's `workload.demand` total against
        // its own EWMA baseline, gated on `net.uplink_util` saturation.
        // The demand series is the workload schedule itself — smooth where
        // per-node utilization is Zipf-noisy — so the ratio crossing lands
        // on the flash-crowd ramp, and the saturation gate keeps substrates
        // with capacity headroom quiet through the same surge.
        if let Some(demand) = demand {
            Self::push_window(&mut self.demand_window, win, demand);
            if self.demand_frames >= self.config.jump_warmup {
                let surge = demand >= self.config.overload_jump * self.demand_ewma;
                let saturated = uplink_util.is_some_and(|u| u >= self.config.overload_util);
                if self.jump_armed && surge && saturated {
                    self.jump_armed = false;
                    let window = std::mem::take(&mut self.demand_window);
                    self.fire(
                        t,
                        ("anomaly.overload", "workload.demand", "jump"),
                        demand,
                        &window,
                        &mut out,
                    );
                    self.demand_window = window;
                } else if !self.jump_armed && !surge {
                    self.jump_armed = true;
                }
            }
            if self.demand_frames == 0 {
                self.demand_ewma = demand;
            } else {
                self.demand_ewma += EWMA_ALPHA * (demand - self.demand_ewma);
            }
            self.demand_frames += 1;
        }

        // EWMA z-score on pending-event count: deviation from the smoothed
        // baseline, after warmup, with the same crossing/re-arm shape.
        let pending = frame.pending as f64;
        Self::push_window(&mut self.pending_window, win, pending);
        if self.ewma_frames >= self.config.zscore_warmup {
            let std = self.ewma_var.sqrt().max(1e-9);
            let z = (pending - self.ewma_mean) / std;
            if self.zscore_armed && z.abs() >= self.config.zscore_k {
                self.zscore_armed = false;
                let window = std::mem::take(&mut self.pending_window);
                self.fire(
                    t,
                    ("anomaly.zscore", "engine.pending", "zscore"),
                    pending,
                    &window,
                    &mut out,
                );
                self.pending_window = window;
            } else if !self.zscore_armed && z.abs() < self.config.zscore_k * 0.5 {
                self.zscore_armed = true;
            }
        }
        let dev = pending - self.ewma_mean;
        self.ewma_mean += EWMA_ALPHA * dev;
        self.ewma_var = (1.0 - EWMA_ALPHA) * (self.ewma_var + EWMA_ALPHA * dev * dev);
        self.ewma_frames += 1;

        // Sustained-trend detector: N consecutive strictly-increasing
        // frames of pending count, then reset so it re-fires only after
        // another full run.
        if frame.pending > self.last_pending {
            self.trend_run += 1;
            if self.trend_run >= self.config.trend_len.max(1) {
                self.trend_run = 0;
                let window = std::mem::take(&mut self.pending_window);
                self.fire(
                    t,
                    ("anomaly.trend", "engine.pending", "trend"),
                    pending,
                    &window,
                    &mut out,
                );
                self.pending_window = window;
            }
        } else {
            self.trend_run = 0;
        }
        self.last_pending = frame.pending;

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::Metrics;

    fn observer_with_log() -> (Observer, Rc<RefCell<Vec<ObsRecord>>>) {
        let log: Rc<RefCell<Vec<ObsRecord>>> = Rc::new(RefCell::new(Vec::new()));
        let sink_log = Rc::clone(&log);
        let obs = Observer::new(
            ObserverConfig::default(),
            Box::new(move |rec| sink_log.borrow_mut().push(rec)),
        );
        (obs, log)
    }

    fn frame(metrics: &Metrics, t_secs: u64, pending: u64, uplink: f64) -> ProbeFrame<'_> {
        ProbeFrame {
            now: SimTime::ZERO + SimDuration::from_secs(t_secs),
            events: t_secs,
            pending,
            queue_max_depth: pending.min(u32::MAX as u64) as u32,
            queue_max_node: NodeId(0),
            queue_nonzero: u32::from(pending > 0),
            uplink_max_backlog_secs: uplink,
            uplink_busy_nodes: u32::from(uplink > 0.0),
            downlink_max_backlog_secs: 0.0,
            downlink_busy_nodes: 0,
            metrics,
        }
    }

    #[test]
    fn overload_fires_once_at_crossing_and_rearms_after_hysteresis() {
        let (obs, _log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(7);
        let m = Metrics::new();
        // Ramp up through the threshold: exactly one firing at the
        // crossing frame, none while it stays saturated.
        let mut fired = Vec::new();
        for (i, v) in [1.0, 10.0, 35.0, 80.0, 80.0].iter().enumerate() {
            for a in sink.on_frame(&frame(&m, i as u64, 0, *v)) {
                fired.push((i, a.kind));
            }
        }
        assert_eq!(fired, vec![(2, "anomaly.overload")]);
        // Still above half-threshold: not re-armed.
        assert!(sink.on_frame(&frame(&m, 5, 0, 40.0)).is_empty());
        // Drop below half-threshold, then cross again: fires again.
        assert!(sink.on_frame(&frame(&m, 6, 0, 2.0)).is_empty());
        let again = sink.on_frame(&frame(&m, 7, 0, 50.0));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].kind, "anomaly.overload");
        assert_eq!(obs.summary().anomalies["anomaly.overload"], 2);
    }

    #[test]
    fn anomaly_record_carries_the_signal_window() {
        let (obs, log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(1);
        let m = Metrics::new();
        for (i, v) in [1.0, 2.0, 99.0].iter().enumerate() {
            sink.on_frame(&frame(&m, i as u64, 0, *v));
        }
        let log = log.borrow();
        let window = log
            .iter()
            .find_map(|rec| match rec {
                ObsRecord::Anomaly(a) => Some(a.window.clone()),
                _ => None,
            })
            .expect("overload fired");
        assert_eq!(window, vec![1.0, 2.0, 99.0], "oldest first, trigger last");
    }

    #[test]
    fn zscore_needs_warmup_then_flags_deviation() {
        let (obs, _log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(1);
        let m = Metrics::new();
        // A noiseless baseline would make any step infinite-z; alternate
        // two values so the EWMA variance is realistic but small.
        for i in 0..40u64 {
            let pending = 100 + (i % 2) * 4;
            assert!(
                sink.on_frame(&frame(&m, i, pending, 0.0)).is_empty(),
                "no firing during baseline (frame {i})"
            );
        }
        let fired = sink.on_frame(&frame(&m, 40, 100_000, 0.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, "anomaly.zscore");
    }

    #[test]
    fn trend_fires_after_sustained_increase_only() {
        let (obs, _log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(1);
        let m = Metrics::new();
        let trend_len = ObserverConfig::default().trend_len as u64;
        // Sawtooth: runs shorter than `trend_len` never fire.
        let mut t = 0u64;
        for _ in 0..4 {
            for step in 0..(trend_len - 1) {
                assert!(sink.on_frame(&frame(&m, t, 10 + step, 0.0)).is_empty());
                t += 1;
            }
            assert!(sink.on_frame(&frame(&m, t, 1, 0.0)).is_empty());
            t += 1;
        }
        // A full run fires exactly once, on its final frame. Values stay in
        // the sawtooth's range so the z-score detector has nothing to say.
        let mut kinds = Vec::new();
        for step in 0..trend_len {
            for a in sink.on_frame(&frame(&m, t, 10 + step, 0.0)) {
                kinds.push(a.kind);
            }
            t += 1;
        }
        assert_eq!(kinds, vec!["anomaly.trend"]);
    }

    #[test]
    fn surge_fires_only_when_demand_jumps_on_a_saturated_uplink() {
        let (obs, log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(1);
        let m = Metrics::new();
        let cfg = ObserverConfig::default();
        let mut t = 0u64;
        let mut note = |sink: &mut Box<dyn ProbeSink>, demand: f64, util: f64| {
            sink.on_signal(SimTime::ZERO, NodeId(0), "workload.demand", demand);
            sink.on_signal(SimTime::ZERO, NodeId(0), "net.uplink_util", util);
            let fired = sink.on_frame(&frame(&m, t, 0, 0.0));
            t += 1;
            fired
        };
        // Steady saturated baseline through warmup: no firing — saturation
        // alone is the absolute detector's business (util stays below its
        // threshold here), the surge detector wants a demand jump.
        for _ in 0..=cfg.jump_warmup {
            assert!(note(&mut sink, 100.0, 0.9).is_empty());
        }
        // Demand doubles but the uplink has headroom: clean (this is the
        // centralized server riding out a flash crowd).
        assert!(note(&mut sink, 250.0, 0.9).is_empty());
        // Same jump against a saturated uplink: the surge detector fires
        // (and the absolute util threshold trips on the same crossing).
        let fired = note(&mut sink, 260.0, 1.4);
        assert_eq!(fired.len(), 2);
        assert!(fired.iter().all(|a| a.kind == "anomaly.overload"));
        let log = log.borrow();
        let rec = log
            .iter()
            .filter_map(|rec| match rec {
                ObsRecord::Anomaly(a) => Some(a),
                _ => None,
            })
            .next_back()
            .expect("anomaly recorded");
        assert_eq!(rec.signal, "workload.demand");
        assert_eq!(rec.detector, "jump");
    }

    #[test]
    fn frames_carry_counter_deltas_and_signal_summaries() {
        let (obs, log) = observer_with_log();
        let mut sink = obs.make_sink();
        sink.on_sim_start(1);
        let mut m = Metrics::new();
        m.incr("net.delivered", 10);
        sink.on_signal(SimTime::ZERO, NodeId(3), "dht.lookup_secs", 2.0);
        sink.on_signal(SimTime::ZERO, NodeId(4), "dht.lookup_secs", 4.0);
        sink.on_frame(&frame(&m, 1, 0, 0.0));
        m.incr("net.delivered", 5);
        m.incr("net.dropped", 2);
        sink.on_frame(&frame(&m, 2, 0, 0.0));
        let log = log.borrow();
        let frames: Vec<&FrameRecord> = log
            .iter()
            .filter_map(|rec| match rec {
                ObsRecord::Frame(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].deltas, vec![("net.delivered".to_owned(), 10)]);
        assert_eq!(frames[0].signals.len(), 1);
        assert_eq!(frames[0].signals[0].name, "dht.lookup_secs");
        assert_eq!(frames[0].signals[0].count, 2);
        assert_eq!(frames[0].signals[0].mean, 3.0);
        assert_eq!(frames[0].signals[0].max, 4.0);
        // Second frame: deltas only (the interval's increments), signals
        // drained by the first frame.
        assert_eq!(
            frames[1].deltas,
            vec![
                ("net.delivered".to_owned(), 5),
                ("net.dropped".to_owned(), 2)
            ]
        );
        assert!(frames[1].signals.is_empty());
    }

    #[test]
    fn ordinals_follow_construction_order_and_share_the_summary() {
        let (obs, log) = observer_with_log();
        let mut first = obs.make_sink();
        let mut second = obs.make_sink();
        first.on_sim_start(11);
        second.on_sim_start(22);
        let m = Metrics::new();
        first.on_frame(&frame(&m, 1, 0, 0.0));
        second.on_frame(&frame(&m, 1, 0, 0.0));
        let summary = obs.summary();
        assert_eq!(summary.sims, 2);
        assert_eq!(summary.frames, 2);
        let starts: Vec<(u32, u64)> = log
            .borrow()
            .iter()
            .filter_map(|rec| match rec {
                ObsRecord::SimStart { ordinal, seed } => Some((*ordinal, *seed)),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![(0, 11), (1, 22)]);
    }

    #[test]
    fn detector_state_is_per_sim() {
        // Saturating sim 0 must not consume sim 1's overload arming.
        let (obs, _log) = observer_with_log();
        let mut a = obs.make_sink();
        let mut b = obs.make_sink();
        a.on_sim_start(1);
        b.on_sim_start(2);
        let m = Metrics::new();
        assert_eq!(a.on_frame(&frame(&m, 1, 0, 100.0)).len(), 1);
        assert_eq!(b.on_frame(&frame(&m, 1, 0, 100.0)).len(), 1);
    }
}

//! Deterministic reactive control: overload policies that close the
//! sense→act loop over the probe plane.
//!
//! The observer plane (`agora-observer`) detects flash-crowd onset from
//! probe frames and substrate signals and returns `ProbeAnomaly` verdicts
//! to the engine. This crate adds the other half: a [`PolicyHub`] wraps an
//! observer sink, applies an engage/escalate/release hysteresis state
//! machine to its verdicts, and exposes the resulting *policy level*
//! through a shared [`PolicyHandle`] that substrate runners poll at
//! deterministic sim times.
//!
//! # Determinism
//!
//! Policies subscribe to probe frames and anomaly verdicts — never to
//! artifact metrics, wall clock, or scheduling order. Probe frames are
//! sampled at dispatch points in the canonical event order, substrate
//! signals arrive in that same order, and the hysteresis machine is a pure
//! function of the frame/signal stream, so the policy level at any sim
//! time — and therefore every action a runner derives from it — is
//! byte-identical at any harness thread count or engine shard count. The
//! within-interval state kept per signal is a running max, which is
//! commutative and associative, so even signal interleaving *within* one
//! cadence interval cannot change a decision (pinned by the proptest in
//! `tests/proptests.rs`).
//!
//! # Hysteresis
//!
//! Disengaged → engaged on an `anomaly.overload` verdict (or the interval
//! uplink-util max reaching `engage_util`). While engaged, each saturated
//! interval escalates the level up to `max_level`; the policy releases
//! only after `release_frames` observed intervals below `release_util`
//! (intervals with no utilization signal hold the count — they neither
//! advance nor reset it), so policies disengage cleanly after the crowd
//! passes instead of flapping at the threshold.
//!
//! # Accounting
//!
//! Runners report concrete actions via [`PolicyHandle::record`]
//! (`policy.shed`, `policy.replicate`, `policy.seed`, …). The sink flushes
//! pending action kinds with the next frame as `ProbeAnomaly` values, so
//! the engine mints `policy.*` counters and causally-parented trace points
//! (`--explain policy.shed` walks into the request being shed), while
//! exact totals stay available from the handle for artifact gauges.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use agora_observer::Observer;
pub use agora_observer::ObserverConfig;
use agora_sim::probe::{ProbeAnomaly, ProbeFrame, ProbeSink};
use agora_sim::{NodeId, SimDuration, SimTime};

/// The substrate signal the hysteresis machine watches: modeled
/// demand-over-uplink utilization, reported per workload tick.
pub const SIG_UPLINK_UTIL: &str = "net.uplink_util";

/// The observer verdict kind that engages a disengaged policy.
pub const ANOMALY_OVERLOAD: &str = "anomaly.overload";

/// Counter/trace key minted when a policy engages (value = level).
pub const POLICY_ENGAGE: &str = "policy.engage";

/// Counter/trace key minted when a policy releases (value = 0).
pub const POLICY_RELEASE: &str = "policy.release";

/// Policy tuning. Every field participates in artifact bytes.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Configuration for the wrapped observer (detectors + cadence).
    pub observer: ObserverConfig,
    /// Engage (and, while engaged, escalate) when the interval's max
    /// `net.uplink_util` reaches this. 1.0 = an uplink cannot carry its
    /// attributed demand.
    pub engage_util: f64,
    /// Count an interval toward release only when the interval's max
    /// utilization is strictly below this (hysteresis band).
    pub release_util: f64,
    /// Consecutive calm intervals (utilization observed below
    /// `release_util`) required to release.
    pub release_frames: u32,
    /// Escalation cap for the policy level.
    pub max_level: u32,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            observer: ObserverConfig::default(),
            engage_util: 1.0,
            release_util: 0.5,
            release_frames: 2,
            max_level: 8,
        }
    }
}

/// Shared hub state: the hysteresis machine plus action accounting.
#[derive(Default)]
struct HubState {
    level: u32,
    engaged: bool,
    calm_frames: u32,
    engages: u64,
    releases: u64,
    /// Actions recorded since the last frame, flushed as `ProbeAnomaly`
    /// values (one per kind, value = batch count) at the next frame.
    pending: BTreeMap<&'static str, u64>,
    /// Cumulative action counts by kind.
    totals: BTreeMap<&'static str, u64>,
}

/// The policy control loop for one simulation: wraps an observer as the
/// verdict source and runs the hysteresis machine over its output. Install
/// via [`PolicyHub::into_sink`] and keep a [`PolicyHandle`] to poll.
pub struct PolicyHub {
    config: PolicyConfig,
    observer: Observer,
    state: Rc<RefCell<HubState>>,
}

impl PolicyHub {
    /// Build a hub. The wrapped observer keeps its verdicts in-process
    /// (no record stream) — it is purely the policy's sensor.
    pub fn new(config: PolicyConfig) -> PolicyHub {
        let observer = Observer::new(config.observer.clone(), Box::new(drop));
        PolicyHub {
            config,
            observer,
            state: Rc::new(RefCell::new(HubState::default())),
        }
    }

    /// The sampling cadence to install alongside the sink.
    pub fn cadence(&self) -> SimDuration {
        self.observer.cadence()
    }

    /// A shared handle for runners to poll the level and record actions.
    pub fn handle(&self) -> PolicyHandle {
        PolicyHandle {
            state: Rc::clone(&self.state),
        }
    }

    /// The probe sink to install with
    /// [`Simulation::set_probe_sink`](agora_sim::Simulation::set_probe_sink).
    /// One hub drives one simulation's control loop.
    pub fn into_sink(self) -> Box<dyn ProbeSink> {
        let inner = self.observer.make_sink();
        Box::new(PolicySink {
            inner,
            config: self.config,
            state: self.state,
            util_max: None,
        })
    }
}

/// Cheap shared handle onto a [`PolicyHub`]'s state.
#[derive(Clone)]
pub struct PolicyHandle {
    state: Rc<RefCell<HubState>>,
}

impl PolicyHandle {
    /// Current policy level: 0 when disengaged, 1..=`max_level` while
    /// engaged. Runners scale their response to this.
    pub fn level(&self) -> u32 {
        self.state.borrow().level
    }

    /// Whether the policy is currently engaged.
    pub fn engaged(&self) -> bool {
        self.state.borrow().engaged
    }

    /// How many times the policy has engaged.
    pub fn engages(&self) -> u64 {
        self.state.borrow().engages
    }

    /// How many times the policy has released.
    pub fn releases(&self) -> u64 {
        self.state.borrow().releases
    }

    /// Record `n` concrete actions of `kind` (e.g. `policy.shed`). Totals
    /// accumulate immediately; the batch is flushed to the engine as a
    /// `ProbeAnomaly` with the next frame.
    pub fn record(&self, kind: &'static str, n: u64) {
        let mut s = self.state.borrow_mut();
        *s.pending.entry(kind).or_insert(0) += n;
        *s.totals.entry(kind).or_insert(0) += n;
    }

    /// Cumulative action count for `kind`.
    pub fn total(&self, kind: &'static str) -> u64 {
        self.state.borrow().totals.get(kind).copied().unwrap_or(0)
    }

    /// All cumulative action counts, key order.
    pub fn totals(&self) -> BTreeMap<&'static str, u64> {
        self.state.borrow().totals.clone()
    }
}

/// The installed sink: forwards everything to the wrapped observer sink,
/// tracks its own per-interval utilization max (the observer drains its
/// aggregates internally), and steps the hysteresis machine on each frame.
struct PolicySink {
    inner: Box<dyn ProbeSink>,
    config: PolicyConfig,
    state: Rc<RefCell<HubState>>,
    util_max: Option<f64>,
}

impl ProbeSink for PolicySink {
    fn on_sim_start(&mut self, seed: u64) {
        self.inner.on_sim_start(seed);
    }

    fn on_signal(&mut self, now: SimTime, node: NodeId, name: &'static str, value: f64) {
        if name == SIG_UPLINK_UTIL {
            // Running max: commutative + associative, so within-interval
            // signal interleaving cannot change the decision.
            let cur = self.util_max.get_or_insert(f64::NEG_INFINITY);
            if value > *cur {
                *cur = value;
            }
        }
        self.inner.on_signal(now, node, name, value);
    }

    fn on_frame(&mut self, frame: &ProbeFrame<'_>) -> Vec<ProbeAnomaly> {
        let mut out = self.inner.on_frame(frame);
        let verdict = out.iter().any(|a| a.kind == ANOMALY_OVERLOAD);
        let util = self.util_max.take();
        let cfg = &self.config;
        let mut s = self.state.borrow_mut();
        if s.engaged {
            match util {
                Some(u) if u >= cfg.engage_util => {
                    s.level = (s.level + 1).min(cfg.max_level);
                    s.calm_frames = 0;
                }
                Some(u) if u < cfg.release_util => {
                    s.calm_frames += 1;
                    if s.calm_frames >= cfg.release_frames.max(1) {
                        s.engaged = false;
                        s.level = 0;
                        s.calm_frames = 0;
                        s.releases += 1;
                        out.push(ProbeAnomaly {
                            kind: POLICY_RELEASE,
                            value: 0.0,
                        });
                    }
                }
                // In the hysteresis band: hold the level, restart the calm
                // count. No signal this interval: hold everything.
                Some(_) => s.calm_frames = 0,
                None => {}
            }
        } else if verdict || util.is_some_and(|u| u >= cfg.engage_util) {
            s.engaged = true;
            s.level = 1.min(cfg.max_level);
            s.calm_frames = 0;
            s.engages += 1;
            out.push(ProbeAnomaly {
                kind: POLICY_ENGAGE,
                value: f64::from(s.level),
            });
        }
        // Flush recorded actions, key order: one counter bump + one
        // causally-parented trace point per kind per frame.
        let pending = std::mem::take(&mut s.pending);
        for (kind, n) in pending {
            out.push(ProbeAnomaly {
                kind,
                value: n as f64,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::Metrics;

    fn frame(metrics: &Metrics, t_secs: u64, uplink_backlog: f64) -> ProbeFrame<'_> {
        ProbeFrame {
            now: SimTime::ZERO + SimDuration::from_secs(t_secs),
            events: t_secs,
            pending: 0,
            queue_max_depth: 0,
            queue_max_node: NodeId(0),
            queue_nonzero: 0,
            uplink_max_backlog_secs: uplink_backlog,
            uplink_busy_nodes: u32::from(uplink_backlog > 0.0),
            downlink_max_backlog_secs: 0.0,
            downlink_busy_nodes: 0,
            metrics,
        }
    }

    fn hub() -> (PolicyHandle, Box<dyn ProbeSink>) {
        let hub = PolicyHub::new(PolicyConfig::default());
        let handle = hub.handle();
        let mut sink = hub.into_sink();
        sink.on_sim_start(7);
        (handle, sink)
    }

    fn note_util(sink: &mut Box<dyn ProbeSink>, util: f64) {
        sink.on_signal(SimTime::ZERO, NodeId(0), SIG_UPLINK_UTIL, util);
    }

    fn kinds(out: &[ProbeAnomaly]) -> Vec<&'static str> {
        out.iter().map(|a| a.kind).collect()
    }

    #[test]
    fn stays_dormant_below_thresholds() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        for t in 0..20 {
            note_util(&mut sink, 0.4);
            let out = sink.on_frame(&frame(&m, t, 1.0));
            assert!(out.is_empty(), "frame {t}: {:?}", kinds(&out));
        }
        assert_eq!(handle.level(), 0);
        assert!(!handle.engaged());
        assert_eq!(handle.engages(), 0);
    }

    #[test]
    fn engages_on_overload_verdict_and_escalates_to_cap() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        // Backlog crossing: the observer's threshold detector fires and
        // the policy engages on its verdict in the same frame.
        let out = sink.on_frame(&frame(&m, 0, 100.0));
        assert_eq!(kinds(&out), vec![ANOMALY_OVERLOAD, POLICY_ENGAGE]);
        assert_eq!(handle.level(), 1);
        assert!(handle.engaged());
        // Saturated intervals escalate up to the cap.
        let max = PolicyConfig::default().max_level;
        for t in 1..=(max + 3) as u64 {
            note_util(&mut sink, 1.5);
            sink.on_frame(&frame(&m, t, 100.0));
        }
        assert_eq!(handle.level(), max);
        assert_eq!(handle.engages(), 1, "no re-engage while engaged");
    }

    #[test]
    fn engages_on_utilization_alone() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        note_util(&mut sink, 1.2);
        let out = sink.on_frame(&frame(&m, 0, 0.0));
        // The observer's util detector fires on the same crossing; the
        // engage rides with it.
        assert!(kinds(&out).contains(&POLICY_ENGAGE));
        assert_eq!(handle.level(), 1);
    }

    #[test]
    fn releases_only_after_sustained_calm() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        sink.on_frame(&frame(&m, 0, 100.0));
        assert!(handle.engaged());
        // Calm interval, then a band interval (between release and engage
        // thresholds): the calm count restarts, no release.
        note_util(&mut sink, 0.2);
        assert!(kinds(&sink.on_frame(&frame(&m, 1, 1.0))).is_empty());
        note_util(&mut sink, 0.7);
        assert!(kinds(&sink.on_frame(&frame(&m, 2, 1.0))).is_empty());
        assert!(handle.engaged(), "band interval must not release");
        // Two calm intervals with a signal-free frame between them: the
        // quiet frame holds the count, the second calm interval releases.
        note_util(&mut sink, 0.2);
        assert!(kinds(&sink.on_frame(&frame(&m, 3, 1.0))).is_empty());
        assert!(kinds(&sink.on_frame(&frame(&m, 4, 1.0))).is_empty());
        note_util(&mut sink, 0.3);
        let out = sink.on_frame(&frame(&m, 5, 1.0));
        assert_eq!(kinds(&out), vec![POLICY_RELEASE]);
        assert_eq!(handle.level(), 0);
        assert!(!handle.engaged());
        assert_eq!(handle.releases(), 1);
    }

    #[test]
    fn reengages_after_release() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        sink.on_frame(&frame(&m, 0, 100.0));
        for t in 1..=2 {
            note_util(&mut sink, 0.1);
            sink.on_frame(&frame(&m, t, 1.0));
        }
        assert!(!handle.engaged());
        // The observer's backlog detector re-arms below half threshold
        // (backlog 1.0 above did that); a fresh crossing re-engages.
        let out = sink.on_frame(&frame(&m, 3, 90.0));
        assert_eq!(kinds(&out), vec![ANOMALY_OVERLOAD, POLICY_ENGAGE]);
        assert_eq!(handle.engages(), 2);
    }

    #[test]
    fn recorded_actions_flush_once_per_frame_in_key_order() {
        let (handle, mut sink) = hub();
        let m = Metrics::new();
        handle.record("policy.shed", 3);
        handle.record("policy.replicate", 1);
        handle.record("policy.shed", 2);
        let out = sink.on_frame(&frame(&m, 0, 1.0));
        assert_eq!(kinds(&out), vec!["policy.replicate", "policy.shed"]);
        assert_eq!(out[0].value, 1.0);
        assert_eq!(out[1].value, 5.0, "batched since last frame");
        // Flushed: the next frame carries nothing.
        assert!(sink.on_frame(&frame(&m, 1, 1.0)).is_empty());
        // Totals survive the flush.
        assert_eq!(handle.total("policy.shed"), 5);
        assert_eq!(handle.total("policy.replicate"), 1);
        assert_eq!(handle.totals().len(), 2);
    }
}

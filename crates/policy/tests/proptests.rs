// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the policy hysteresis machine.

use agora_policy::{PolicyConfig, PolicyHandle, SIG_UPLINK_UTIL};
use agora_sim::probe::{ProbeFrame, ProbeSink};
use agora_sim::{Metrics, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

fn frame(metrics: &Metrics, t_secs: u64, uplink_backlog: f64) -> ProbeFrame<'_> {
    ProbeFrame {
        now: SimTime::ZERO + SimDuration::from_secs(t_secs),
        events: t_secs,
        pending: 0,
        queue_max_depth: 0,
        queue_max_node: NodeId(0),
        queue_nonzero: 0,
        uplink_max_backlog_secs: uplink_backlog,
        uplink_busy_nodes: u32::from(uplink_backlog > 0.0),
        downlink_max_backlog_secs: 0.0,
        downlink_busy_nodes: 0,
        metrics,
    }
}

/// Drive one sink through `intervals` (each a bag of utilization signals
/// plus a frame backlog), returning the level trajectory.
fn run(intervals: &[(Vec<f64>, f64)]) -> Vec<u32> {
    let hub = agora_policy::PolicyHub::new(PolicyConfig::default());
    let handle: PolicyHandle = hub.handle();
    let mut sink = hub.into_sink();
    sink.on_sim_start(1);
    let m = Metrics::new();
    let mut levels = Vec::new();
    for (t, (signals, backlog)) in intervals.iter().enumerate() {
        for v in signals {
            sink.on_signal(SimTime::ZERO, NodeId(0), SIG_UPLINK_UTIL, *v);
        }
        sink.on_frame(&frame(&m, t as u64, *backlog));
        levels.push(handle.level());
    }
    levels
}

proptest! {
    /// Interleave idempotence: within one cadence interval only the signal
    /// *max* matters, so any permutation of the interval's signals yields
    /// the identical level trajectory — the determinism argument for the
    /// sharded engine's within-interval delivery order.
    #[test]
    fn within_interval_signal_order_is_irrelevant(
        intervals in proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..3.0, 0..6),
                prop_oneof![Just(0.0f64), 0.0f64..50.0],
            ),
            1..20,
        ),
        seed in any::<u64>(),
    ) {
        let baseline = run(&intervals);
        // Deterministic LCG shuffle of each interval's signal bag.
        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut shuffled = intervals.clone();
        for (signals, _) in &mut shuffled {
            for i in (1..signals.len()).rev() {
                let j = (rng() % (i as u64 + 1)) as usize;
                signals.swap(i, j);
            }
        }
        prop_assert_eq!(baseline, run(&shuffled));
    }

    /// The level is always within bounds and zero exactly when disengaged.
    #[test]
    fn level_is_bounded(
        intervals in proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..3.0, 0..4),
                prop_oneof![Just(0.0f64), 0.0f64..50.0],
            ),
            1..30,
        ),
    ) {
        let max = PolicyConfig::default().max_level;
        for level in run(&intervals) {
            prop_assert!(level <= max);
        }
    }
}

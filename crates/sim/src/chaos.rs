//! Deterministic fault-injection: seed-derived fault schedules compiled
//! into timed actions applied through the public [`Simulation`] API.
//!
//! A [`ChaosSpec`] describes *what kinds* of faults to inject (correlated
//! crash waves, flapping links, asymmetric partitions, loss/latency storms,
//! duplication/reordering); [`ChaosSpec::compile`] expands it — using a
//! dedicated [`SimRng`] stream so the main simulation stream is never
//! perturbed — into a [`ChaosSchedule`] of concrete [`ChaosFault`]s at
//! concrete offsets. A [`ChaosController`] then interleaves the schedule
//! with normal event processing: `controller.run_for(sim, d, ..)` is a
//! drop-in replacement for `sim.run_for(d)` that applies each fault at its
//! exact simulated instant.
//!
//! Determinism contract: the schedule is a pure function of
//! `(spec, seed, nodes, horizon)`, every fault lands at a deterministic
//! simulated time, and all in-schedule randomness (victim selection, flap
//! placement) comes from the compile-time RNG — so chaos runs are
//! byte-identical across harness thread counts like everything else.
//!
//! Victim selection uses a *prefix-of-permutation* rule: one seeded
//! shuffle of the node list is drawn per compile, and a fault of fraction
//! `f` targets the first `round(f·n)` entries. Escalating the fraction
//! therefore targets a superset of the previous victims, which makes
//! degradation curves monotone by construction rather than by luck.

use crate::engine::{NodeId, Protocol, Simulation};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Correlated crash waves: kill a fraction of nodes in a burst, revive
/// them after a hold, repeat.
#[derive(Clone, Copy, Debug)]
pub struct CrashWaves {
    /// Number of waves, spread evenly across the horizon.
    pub waves: u32,
    /// Fraction of the node list killed per wave (prefix rule).
    pub fraction: f64,
    /// How long victims stay down before the paired revive.
    pub hold: SimDuration,
    /// Wipe node state on revive (crash-with-amnesia) vs preserve it.
    pub amnesia: bool,
}

/// Flapping links: individual nodes whose chaos link drops and recovers,
/// while the node itself keeps running.
#[derive(Clone, Copy, Debug)]
pub struct LinkFlaps {
    /// Number of flap episodes, placed at seed-derived offsets.
    pub count: u32,
    /// Duration of each episode.
    pub down_for: SimDuration,
}

/// An asymmetric partition: victims' outbound traffic is dropped while
/// inbound traffic still reaches them (A→B delivered, B→A dropped).
#[derive(Clone, Copy, Debug)]
pub struct AsymPartition {
    /// Fraction of the node list on the muted side (prefix rule).
    pub fraction: f64,
    /// Onset as a fraction of the horizon (0.0–1.0).
    pub start_frac: f64,
    /// How long the partition lasts.
    pub duration: SimDuration,
}

/// A loss/latency storm that ramps up in steps to a peak and decays back.
#[derive(Clone, Copy, Debug)]
pub struct Storm {
    /// Random-loss rate at the storm's peak.
    pub peak_loss: f64,
    /// Propagation-latency multiplier at the storm's peak.
    pub latency_factor: f64,
    /// Steps on each side of the peak (ramp-up and decay).
    pub steps: u32,
}

/// What kinds of faults to inject. All fields default to "off"; a default
/// spec compiles to an empty schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSpec {
    /// Correlated crash waves.
    pub crash: Option<CrashWaves>,
    /// Flapping links.
    pub flaps: Option<LinkFlaps>,
    /// One asymmetric partition episode.
    pub asym: Option<AsymPartition>,
    /// One loss/latency storm.
    pub storm: Option<Storm>,
    /// Message duplication probability for the whole run (0.0 = off).
    pub dup_rate: f64,
    /// Bounded-reorder delay ceiling for the whole run (ZERO = off).
    pub reorder: SimDuration,
}

/// A concrete fault to apply at a schedule offset.
#[derive(Clone, Debug)]
pub enum ChaosFault {
    /// Kill each victim (idempotent per node).
    Kill {
        /// Nodes to take down.
        victims: Vec<NodeId>,
    },
    /// Revive each victim, optionally wiping its state first.
    Revive {
        /// Nodes to bring back.
        victims: Vec<NodeId>,
        /// Invoke the caller's reset hook before reviving.
        amnesia: bool,
    },
    /// Drop one node's chaos link.
    LinkDown {
        /// The flapping node.
        node: NodeId,
    },
    /// Restore one node's chaos link.
    LinkUp {
        /// The flapping node.
        node: NodeId,
    },
    /// Start an asymmetric partition: victims' outbound traffic drops.
    AsymOn {
        /// The muted side.
        victims: Vec<NodeId>,
    },
    /// End the asymmetric partition.
    AsymOff {
        /// The previously muted side (groups reset to 0).
        victims: Vec<NodeId>,
    },
    /// Set the global random-loss rate (storm step).
    SetLoss {
        /// New loss rate.
        rate: f64,
    },
    /// Set the chaos latency multiplier (storm step).
    SetLatencyFactor {
        /// New multiplier.
        factor: f64,
    },
    /// Enable message duplication at this rate.
    SetDupRate {
        /// Duplication probability.
        rate: f64,
    },
    /// Enable bounded reordering up to this delay.
    SetReorder {
        /// Delay ceiling.
        bound: SimDuration,
    },
}

/// One scheduled fault.
#[derive(Clone, Debug)]
pub struct ChaosAction {
    /// Offset from the controller's install instant.
    pub at: SimDuration,
    /// The fault to apply.
    pub fault: ChaosFault,
}

/// A compiled, time-sorted fault schedule.
#[derive(Clone, Debug, Default)]
pub struct ChaosSchedule {
    actions: Vec<ChaosAction>,
}

impl ChaosSchedule {
    /// The scheduled actions, sorted by offset.
    pub fn actions(&self) -> &[ChaosAction] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl ChaosSpec {
    /// Expand this spec into a concrete schedule for `nodes` over
    /// `horizon`, drawing all randomness from a fresh RNG seeded with
    /// `seed`. Pure: same inputs, same schedule.
    pub fn compile(&self, seed: u64, nodes: &[NodeId], horizon: SimDuration) -> ChaosSchedule {
        let mut rng = SimRng::new(seed);
        let mut actions: Vec<ChaosAction> = Vec::new();
        let n = nodes.len();

        // One victim-preference permutation per compile: a fault of
        // fraction f targets order[..round(f*n)], so escalating f targets
        // a superset (monotone degradation by construction).
        let mut order: Vec<NodeId> = nodes.to_vec();
        rng.shuffle(&mut order);
        let prefix = |fraction: f64| -> Vec<NodeId> {
            let k = ((fraction * n as f64).round() as usize).min(n);
            order[..k].to_vec()
        };

        if let Some(c) = self.crash {
            let victims = prefix(c.fraction);
            if !victims.is_empty() && c.waves > 0 {
                for w in 0..c.waves {
                    let at = SimDuration(horizon.micros() * (w as u64 + 1) / (c.waves as u64 + 1));
                    actions.push(ChaosAction {
                        at,
                        fault: ChaosFault::Kill {
                            victims: victims.clone(),
                        },
                    });
                    actions.push(ChaosAction {
                        at: at + c.hold,
                        fault: ChaosFault::Revive {
                            victims: victims.clone(),
                            amnesia: c.amnesia,
                        },
                    });
                }
            }
        }

        if let Some(f) = self.flaps {
            for _ in 0..f.count {
                let node = *rng.pick(nodes);
                let latest = horizon.micros().saturating_sub(f.down_for.micros()).max(1);
                let at = SimDuration(rng.below(latest));
                actions.push(ChaosAction {
                    at,
                    fault: ChaosFault::LinkDown { node },
                });
                actions.push(ChaosAction {
                    at: at + f.down_for,
                    fault: ChaosFault::LinkUp { node },
                });
            }
        }

        if let Some(a) = self.asym {
            let victims = prefix(a.fraction);
            if !victims.is_empty() {
                let start =
                    SimDuration::from_secs_f64(horizon.secs_f64() * a.start_frac.clamp(0.0, 1.0));
                actions.push(ChaosAction {
                    at: start,
                    fault: ChaosFault::AsymOn {
                        victims: victims.clone(),
                    },
                });
                actions.push(ChaosAction {
                    at: start + a.duration,
                    fault: ChaosFault::AsymOff { victims },
                });
            }
        }

        if let Some(s) = self.storm {
            // Ramp between horizon/4 and horizon/2, decay back by 3/4.
            let steps = s.steps.max(1) as u64;
            let quarter = horizon.micros() / 4;
            for i in 1..=steps {
                let frac = i as f64 / steps as f64;
                actions.push(ChaosAction {
                    at: SimDuration(quarter + quarter * (i - 1) / steps),
                    fault: ChaosFault::SetLoss {
                        rate: s.peak_loss * frac,
                    },
                });
                actions.push(ChaosAction {
                    at: SimDuration(quarter + quarter * (i - 1) / steps),
                    fault: ChaosFault::SetLatencyFactor {
                        factor: 1.0 + (s.latency_factor - 1.0) * frac,
                    },
                });
            }
            for i in 1..=steps {
                let frac = 1.0 - i as f64 / steps as f64;
                actions.push(ChaosAction {
                    at: SimDuration(2 * quarter + quarter * i / steps),
                    fault: ChaosFault::SetLoss {
                        rate: s.peak_loss * frac,
                    },
                });
                actions.push(ChaosAction {
                    at: SimDuration(2 * quarter + quarter * i / steps),
                    fault: ChaosFault::SetLatencyFactor {
                        factor: 1.0 + (s.latency_factor - 1.0) * frac,
                    },
                });
            }
        }

        if self.dup_rate > 0.0 {
            actions.push(ChaosAction {
                at: SimDuration::ZERO,
                fault: ChaosFault::SetDupRate {
                    rate: self.dup_rate,
                },
            });
        }
        if self.reorder > SimDuration::ZERO {
            actions.push(ChaosAction {
                at: SimDuration::ZERO,
                fault: ChaosFault::SetReorder {
                    bound: self.reorder,
                },
            });
        }

        actions.sort_by_key(|a| a.at);
        ChaosSchedule { actions }
    }
}

/// Applies a [`ChaosSchedule`] to a running simulation, interleaving fault
/// application with normal event processing. Every applied fault is
/// counted under `chaos.*` metrics and (with the `trace` feature) noted as
/// a `chaos.*` trace point so the flight recorder grows a chaos span
/// family.
pub struct ChaosController {
    schedule: ChaosSchedule,
    base: SimTime,
    next: usize,
}

impl ChaosController {
    /// Install a schedule on `sim`: enables the chaos layer with
    /// `chaos_seed` and anchors all offsets at the current simulated time.
    pub fn install<P: Protocol>(
        sim: &mut Simulation<P>,
        schedule: ChaosSchedule,
        chaos_seed: u64,
    ) -> ChaosController {
        sim.enable_chaos(chaos_seed);
        ChaosController {
            schedule,
            base: sim.now(),
            next: 0,
        }
    }

    /// Faults applied so far.
    pub fn applied(&self) -> usize {
        self.next
    }

    /// Drop-in replacement for `sim.run_for(d)` that applies scheduled
    /// faults at their exact instants. `reset` is the amnesia hook: it is
    /// called with each victim's protocol state before an
    /// amnesia-flagged revive (pass `|_, _| {}` when the schedule has no
    /// amnesia waves).
    pub fn run_for<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        d: SimDuration,
        reset: &mut dyn FnMut(NodeId, &mut P),
    ) {
        let limit = sim.now() + d;
        self.run_until(sim, limit, reset);
    }

    /// As [`ChaosController::run_for`], but to an absolute deadline.
    pub fn run_until<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        limit: SimTime,
        reset: &mut dyn FnMut(NodeId, &mut P),
    ) {
        while let Some(action) = self.schedule.actions.get(self.next) {
            let at = self.base + action.at;
            if at > limit {
                break;
            }
            sim.run_until(at);
            let fault = self.schedule.actions[self.next].fault.clone();
            self.next += 1;
            self.apply(sim, &fault, reset);
        }
        sim.run_until(limit);
    }

    fn apply<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        fault: &ChaosFault,
        reset: &mut dyn FnMut(NodeId, &mut P),
    ) {
        match fault {
            ChaosFault::Kill { victims } => {
                for &v in victims {
                    sim.kill(v);
                }
                sim.metrics_mut().incr("chaos.killed", victims.len() as u64);
                sim.trace_note("chaos.kill", victims.len() as f64);
            }
            ChaosFault::Revive { victims, amnesia } => {
                for &v in victims {
                    if *amnesia {
                        reset(v, sim.node_mut(v));
                    }
                    sim.revive(v);
                }
                sim.metrics_mut()
                    .incr("chaos.revived", victims.len() as u64);
                if *amnesia {
                    sim.metrics_mut()
                        .incr("chaos.amnesia_wipes", victims.len() as u64);
                    sim.trace_note("chaos.amnesia", victims.len() as f64);
                }
                sim.trace_note("chaos.revive", victims.len() as f64);
            }
            ChaosFault::LinkDown { node } => {
                sim.set_chaos_link(*node, false);
                sim.metrics_mut().incr("chaos.link_flaps", 1);
                sim.trace_note("chaos.flap", node.0 as f64);
            }
            ChaosFault::LinkUp { node } => {
                sim.set_chaos_link(*node, true);
                sim.trace_note("chaos.flap_heal", node.0 as f64);
            }
            ChaosFault::AsymOn { victims } => {
                for &v in victims {
                    sim.set_chaos_group(v, 1);
                }
                sim.chaos_block_directed(1, 0);
                sim.metrics_mut().incr("chaos.asym_partitions", 1);
                sim.trace_note("chaos.asym", victims.len() as f64);
            }
            ChaosFault::AsymOff { victims } => {
                sim.chaos_clear_directed();
                for &v in victims {
                    sim.set_chaos_group(v, 0);
                }
                sim.trace_note("chaos.asym_heal", victims.len() as f64);
            }
            ChaosFault::SetLoss { rate } => {
                sim.set_loss_rate(*rate);
                sim.metrics_mut().incr("chaos.storm_steps", 1);
                sim.trace_note("chaos.storm_loss", *rate);
            }
            ChaosFault::SetLatencyFactor { factor } => {
                sim.set_chaos_latency_factor(*factor);
                sim.trace_note("chaos.storm_latency", *factor);
            }
            ChaosFault::SetDupRate { rate } => {
                sim.set_chaos_dup_rate(*rate);
                sim.trace_note("chaos.dup_on", *rate);
            }
            ChaosFault::SetReorder { bound } => {
                sim.set_chaos_reorder(*bound);
                sim.trace_note("chaos.reorder_on", bound.secs_f64());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn default_spec_compiles_empty() {
        let s = ChaosSpec::default().compile(1, &ids(10), SimDuration::from_secs(100));
        assert!(s.is_empty());
    }

    #[test]
    fn compile_is_deterministic() {
        let spec = ChaosSpec {
            crash: Some(CrashWaves {
                waves: 3,
                fraction: 0.4,
                hold: SimDuration::from_secs(5),
                amnesia: false,
            }),
            flaps: Some(LinkFlaps {
                count: 4,
                down_for: SimDuration::from_secs(2),
            }),
            storm: Some(Storm {
                peak_loss: 0.3,
                latency_factor: 4.0,
                steps: 3,
            }),
            ..Default::default()
        };
        let a = spec.compile(9, &ids(10), SimDuration::from_secs(300));
        let b = spec.compile(9, &ids(10), SimDuration::from_secs(300));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.actions().iter().zip(b.actions()) {
            assert_eq!(x.at, y.at);
            assert_eq!(format!("{:?}", x.fault), format!("{:?}", y.fault));
        }
        let c = spec.compile(10, &ids(10), SimDuration::from_secs(300));
        assert_ne!(
            format!("{:?}", a.actions()),
            format!("{:?}", c.actions()),
            "different seed, different schedule"
        );
    }

    #[test]
    fn escalating_fraction_targets_a_superset() {
        let horizon = SimDuration::from_secs(100);
        let nodes = ids(10);
        let victims_at = |f: f64| -> Vec<NodeId> {
            let spec = ChaosSpec {
                crash: Some(CrashWaves {
                    waves: 1,
                    fraction: f,
                    hold: SimDuration::from_secs(1),
                    amnesia: false,
                }),
                ..Default::default()
            };
            let sched = spec.compile(5, &nodes, horizon);
            match &sched.actions()[0].fault {
                ChaosFault::Kill { victims } => victims.clone(),
                other => panic!("expected Kill, got {other:?}"),
            }
        };
        let small = victims_at(0.2);
        let big = victims_at(0.6);
        assert_eq!(small.len(), 2);
        assert_eq!(big.len(), 6);
        assert_eq!(&big[..2], &small[..], "prefix rule: superset of victims");
    }

    #[test]
    fn waves_pair_kills_with_revives_inside_horizon() {
        let spec = ChaosSpec {
            crash: Some(CrashWaves {
                waves: 2,
                fraction: 0.5,
                hold: SimDuration::from_secs(3),
                amnesia: true,
            }),
            ..Default::default()
        };
        let sched = spec.compile(2, &ids(8), SimDuration::from_secs(60));
        let kills = sched
            .actions()
            .iter()
            .filter(|a| matches!(a.fault, ChaosFault::Kill { .. }))
            .count();
        let revives = sched
            .actions()
            .iter()
            .filter(|a| matches!(a.fault, ChaosFault::Revive { amnesia: true, .. }))
            .count();
        assert_eq!(kills, 2);
        assert_eq!(revives, 2);
        for w in sched.actions().windows(2) {
            assert!(w[0].at <= w[1].at, "schedule must be time-sorted");
        }
    }
}

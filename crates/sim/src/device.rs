//! Device classes, calibrated to the paper's §4 infrastructure assumptions.
//!
//! The paper's feasibility argument (and its §5.2 "quality vs quantity"
//! discussion) rests on four coarse device classes: datacenter servers,
//! personal computers, smartphones, and tablets. Each class here carries the
//! resources §4 assumes (uplink bandwidth, spare cores, free storage) plus a
//! quality model (availability duty cycle, session lengths, latency spread)
//! used by the churn and link layers.

use crate::time::SimDuration;

/// The four device classes of the paper's §4 capacity model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// A datacenter server behind a fat pipe; the "cloud" side of Table 3.
    DatacenterServer,
    /// A home PC on consumer broadband (§4 assumes 1 Mbps upstream).
    PersonalComputer,
    /// A smartphone on a slow 3G link (1 Mbps upstream, no spare storage,
    /// battery-constrained — §4 excludes phones from compute).
    Smartphone,
    /// A tablet (1 spare core, 10 GB free storage, 1 Mbps upstream).
    Tablet,
}

/// Static resource and quality profile of a device class.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Which class this profile belongs to.
    pub class: DeviceClass,
    /// Upstream bandwidth in bits per second.
    pub uplink_bps: u64,
    /// Downstream bandwidth in bits per second.
    pub downlink_bps: u64,
    /// Spare (unutilized) CPU cores, before any server-equivalence discount.
    pub spare_cores: u32,
    /// Free storage in bytes available to democratized services.
    pub free_storage_bytes: u64,
    /// Long-run fraction of time the device is powered on and connected.
    pub duty_cycle: f64,
    /// Mean length of an online session (drives the churn process).
    pub mean_session: SimDuration,
    /// Base one-way latency to a random peer.
    pub base_latency: SimDuration,
    /// Latency jitter expressed as a log-normal sigma (0 = none). Consumer
    /// access links show heavy-tailed latency; datacenters do not.
    pub latency_sigma: f64,
    /// Whether the battery model forbids sustained compute (phones/tablets).
    pub battery_constrained: bool,
}

impl DeviceClass {
    /// The profile the paper's assumptions imply for this class.
    ///
    /// Bandwidth and storage figures are exactly §4's ("1 Mbps upstream",
    /// "100 GB free storage", "2 unutilized cores", ...). Quality figures
    /// (duty cycle, session length, latency) are not given by the paper; we
    /// choose values consistent with its characterization of user-device
    /// infrastructure as intermittent and variable, and the sensitivity
    /// experiments sweep them.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceClass::DatacenterServer => DeviceProfile {
                class: self,
                uplink_bps: 10_000_000_000,
                downlink_bps: 10_000_000_000,
                spare_cores: 0, // cloud cores are the *productive* side
                free_storage_bytes: 0,
                duty_cycle: 0.9995, // EC2's advertised 99.95% region availability
                mean_session: SimDuration::from_days(30),
                base_latency: SimDuration::from_micros(500),
                latency_sigma: 0.1,
                battery_constrained: false,
            },
            DeviceClass::PersonalComputer => DeviceProfile {
                class: self,
                uplink_bps: 1_000_000, // §4: "slow broadband ... 1 Mbps upstream"
                downlink_bps: 10_000_000,
                spare_cores: 2,                      // §4
                free_storage_bytes: 100_000_000_000, // §4: 100 GB
                duty_cycle: 0.45,
                mean_session: SimDuration::from_hours(5),
                base_latency: SimDuration::from_millis(20),
                latency_sigma: 0.5,
                battery_constrained: false,
            },
            DeviceClass::Smartphone => DeviceProfile {
                class: self,
                uplink_bps: 1_000_000, // §4: "slow 3G ... 1 Mbps upstream"
                downlink_bps: 4_000_000,
                spare_cores: 1,        // §4 (but battery-excluded from compute)
                free_storage_bytes: 0, // §4: "negligible free storage"
                duty_cycle: 0.30,
                mean_session: SimDuration::from_mins(30),
                base_latency: SimDuration::from_millis(60),
                latency_sigma: 0.8,
                battery_constrained: true,
            },
            DeviceClass::Tablet => DeviceProfile {
                class: self,
                uplink_bps: 1_000_000,
                downlink_bps: 4_000_000,
                spare_cores: 1,                     // §4
                free_storage_bytes: 10_000_000_000, // §4: 10 GB
                duty_cycle: 0.25,
                mean_session: SimDuration::from_hours(1),
                base_latency: SimDuration::from_millis(40),
                latency_sigma: 0.7,
                battery_constrained: true,
            },
        }
    }

    /// All classes, cloud first.
    pub fn all() -> [DeviceClass; 4] {
        [
            DeviceClass::DatacenterServer,
            DeviceClass::PersonalComputer,
            DeviceClass::Smartphone,
            DeviceClass::Tablet,
        ]
    }

    /// Short human label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::DatacenterServer => "server",
            DeviceClass::PersonalComputer => "pc",
            DeviceClass::Smartphone => "phone",
            DeviceClass::Tablet => "tablet",
        }
    }
}

impl DeviceProfile {
    /// Mean length of an offline gap implied by duty cycle and session length:
    /// duty = up / (up + down)  ⇒  down = up * (1 - duty) / duty.
    pub fn mean_offtime(&self) -> SimDuration {
        if self.duty_cycle >= 1.0 {
            return SimDuration::ZERO;
        }
        if self.duty_cycle <= 0.0 {
            return SimDuration::from_days(365);
        }
        let up = self.mean_session.secs_f64();
        SimDuration::from_secs_f64(up * (1.0 - self.duty_cycle) / self.duty_cycle)
    }

    /// Server-equivalent spare cores after the paper's §4 discounts: phones
    /// and tablets contribute none (battery), PCs are derated 8× (weak CPUs
    /// plus power management).
    pub fn server_equivalent_cores(&self) -> f64 {
        if self.battery_constrained {
            return 0.0;
        }
        match self.class {
            DeviceClass::DatacenterServer => self.spare_cores as f64,
            _ => self.spare_cores as f64 / 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_encoded() {
        let pc = DeviceClass::PersonalComputer.profile();
        assert_eq!(pc.uplink_bps, 1_000_000);
        assert_eq!(pc.spare_cores, 2);
        assert_eq!(pc.free_storage_bytes, 100_000_000_000);

        let phone = DeviceClass::Smartphone.profile();
        assert_eq!(phone.uplink_bps, 1_000_000);
        assert_eq!(phone.free_storage_bytes, 0);
        assert!(phone.battery_constrained);

        let tablet = DeviceClass::Tablet.profile();
        assert_eq!(tablet.free_storage_bytes, 10_000_000_000);
        assert_eq!(tablet.spare_cores, 1);
    }

    #[test]
    fn server_equivalence_discounts() {
        // §4: 4B PC cores / 8 = 500M server-equivalent; phones contribute 0.
        let pc = DeviceClass::PersonalComputer.profile();
        assert_eq!(pc.server_equivalent_cores(), 0.25);
        assert_eq!(
            DeviceClass::Smartphone.profile().server_equivalent_cores(),
            0.0
        );
        assert_eq!(DeviceClass::Tablet.profile().server_equivalent_cores(), 0.0);
    }

    #[test]
    fn offtime_consistent_with_duty_cycle() {
        let pc = DeviceClass::PersonalComputer.profile();
        let up = pc.mean_session.secs_f64();
        let down = pc.mean_offtime().secs_f64();
        let duty = up / (up + down);
        assert!((duty - pc.duty_cycle).abs() < 1e-6, "duty {duty}");
    }

    #[test]
    fn offtime_degenerate_duty_cycles() {
        let mut p = DeviceClass::PersonalComputer.profile();
        p.duty_cycle = 1.0;
        assert_eq!(p.mean_offtime(), SimDuration::ZERO);
        p.duty_cycle = 0.0;
        assert!(p.mean_offtime().secs_f64() > 1e6);
    }

    #[test]
    fn class_ordering_and_labels() {
        let all = DeviceClass::all();
        assert_eq!(all[0].label(), "server");
        assert_eq!(all[1].label(), "pc");
        assert_eq!(all[2].label(), "phone");
        assert_eq!(all[3].label(), "tablet");
    }
}

//! The discrete-event simulation engine.
//!
//! Protocols are written as poll-free, event-driven state machines (the
//! smoltcp idiom): the engine delivers messages and timer expirations, and the
//! protocol reacts through a [`Ctx`] handle that can send messages, arm
//! timers, draw randomness and record metrics. There is no async runtime and
//! no real I/O; everything is deterministic given the seed.

use std::cmp::Ordering;
use std::mem;
use std::sync::mpsc;

use crate::device::{DeviceClass, DeviceProfile};
use crate::metrics::{CounterHandle, Metrics};
use crate::net::Network;
#[cfg(feature = "trace")]
use crate::net::SendFailure;
#[cfg(feature = "probe")]
use crate::probe::{NoopProbe, ProbeFrame, ProbeSink};
use crate::rng::SimRng;
use crate::shard::{
    lane_window, LaneCmd, LaneOut, Scheduler, ShardState, ShardStats, ShardWorkers,
};
use crate::time::{SimDuration, SimTime};
#[cfg(feature = "trace")]
use crate::trace::{DropReason, NoopSink, TraceEvent, TraceKind, TraceSink};

/// Emit a trace record when the `trace` feature is compiled in; expand to
/// nothing otherwise. The `$kind` expression is cfg-stripped with the rest,
/// so call sites never need their own feature gates.
macro_rules! trace_event {
    ($tracer:expr, $key:expr, $at:expr, $node:expr, $kind:expr) => {
        #[cfg(feature = "trace")]
        {
            $tracer.emit($key, $at, $node, $kind);
        }
    };
}

/// The engine's trace state: the installed sink, a cached enabled flag (the
/// only thing the hot path reads), and the packed key of the event currently
/// being dispatched — the causal parent stamped onto every record emitted
/// from inside its handler.
#[cfg(feature = "trace")]
struct Tracer {
    sink: Box<dyn TraceSink>,
    on: bool,
    /// Key of the event whose handler is running; 0 between dispatches
    /// (external injections like `with_ctx`, `kill`, `revive`).
    cur: u128,
    seed: u64,
}

#[cfg(feature = "trace")]
impl Tracer {
    #[inline]
    fn emit(&mut self, key: u128, at: SimTime, node: NodeId, kind: TraceKind) {
        if self.on {
            self.sink.record(&TraceEvent {
                key,
                parent: self.cur,
                at,
                node,
                kind,
            });
        }
    }
}

/// Pseudo-node stamped on records that concern the whole simulation.
#[cfg(feature = "trace")]
const TRACE_SIM_NODE: NodeId = NodeId(u32::MAX);

/// The engine's probe state (see [`crate::probe`]): the installed sink, a
/// cached enabled flag (the only thing the hot path reads when no sink is
/// installed), the sampling cadence, and the engine-side bookkeeping —
/// total and per-node pending-event counts maintained at the two scheduler
/// push funnels and the dispatch decrement, so frame queue statistics are a
/// pure function of the canonical event order and never consult the
/// scheduler's internal (shard-dependent) layout.
#[cfg(feature = "probe")]
struct Prober {
    sink: Box<dyn ProbeSink>,
    on: bool,
    /// Sampling cadence in micros (`u64::MAX` when no sink is installed).
    every: u64,
    /// Next cadence boundary in micros; a frame fires at the first
    /// dispatched event whose time reaches it.
    next_at: u64,
    /// Undispatched events across all nodes.
    pending: u64,
    /// Per-node pending-event depth, indexed by `NodeId`.
    depth: Vec<u32>,
    seed: u64,
}

#[cfg(feature = "probe")]
impl Prober {
    fn target<M>(kind: &EventKind<M>) -> NodeId {
        match kind {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
            EventKind::ChurnDown(id) | EventKind::ChurnUp(id) => *id,
        }
    }

    /// An event entered the scheduler. Saturating arithmetic so a sink
    /// installed mid-run (after events were already queued) degrades to
    /// approximate counts instead of underflowing; the factory path
    /// (installation at `Simulation::new`) is always exact.
    #[inline]
    fn note_push<M>(&mut self, kind: &EventKind<M>) {
        if !self.on {
            return;
        }
        self.pending += 1;
        let ix = Self::target(kind).index();
        if ix >= self.depth.len() {
            self.depth.resize(ix + 1, 0);
        }
        self.depth[ix] += 1;
    }

    /// An event left the scheduler for dispatch.
    #[inline]
    fn note_dispatch<M>(&mut self, kind: &EventKind<M>) {
        if !self.on {
            return;
        }
        self.pending = self.pending.saturating_sub(1);
        let ix = Self::target(kind).index();
        if let Some(d) = self.depth.get_mut(ix) {
            *d = d.saturating_sub(1);
        }
    }
}

/// Identifier of a simulated node. Dense indices into the engine's tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index into engine tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol instance hosted on one simulated node.
///
/// All methods are invoked only while the node is up, except [`Protocol::on_down`],
/// which fires at the instant the node goes down (sends from it are dropped).
pub trait Protocol {
    /// The wire message type exchanged between nodes running this protocol.
    type Msg: Clone;

    /// Called once when the node first starts (it starts up).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A message from `from` has arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// A timer armed with [`Ctx::set_timer`] has fired. Stale timers are the
    /// protocol's responsibility to ignore (there is no cancellation).
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _tag: u64) {}

    /// The node just went down (churn or injected failure).
    fn on_down(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// The node just came back up. Protocols should re-arm timers here.
    fn on_up(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

pub(crate) enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, tag: u64 },
    ChurnDown(NodeId),
    ChurnUp(NodeId),
}

pub(crate) struct Event<M> {
    /// `(at, seq)` packed big-endian into one word: micros in the high 64
    /// bits, insertion sequence in the low 64. A single `u128` comparison
    /// orders events by time with deterministic insertion-order tie-breaks —
    /// one branch in the heap's sift loops instead of two chained `cmp`s,
    /// and an 8-byte-smaller header than the unpacked `(SimTime, u64)` pair.
    pub(crate) key: u128,
    pub(crate) kind: EventKind<M>,
}

impl<M> Event<M> {
    pub(crate) fn pack(at: SimTime, seq: u64) -> u128 {
        ((at.micros() as u128) << 64) | seq as u128
    }

    fn at(&self) -> SimTime {
        SimTime((self.key >> 64) as u64)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reverse ordering so BinaryHeap pops the earliest event; the packed key
    // already breaks time ties by insertion sequence for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// Pre-resolved handles for the counters the engine bumps on every event, so
/// the dispatch loop pays an array index instead of a `BTreeMap` string
/// lookup per increment. Registration is invisible in artifacts until a
/// counter actually fires (see [`Metrics::counter_handle`]).
#[derive(Clone, Copy)]
struct HotCounters {
    sent: CounterHandle,
    sent_bytes: CounterHandle,
    lost: CounterHandle,
    delivered: CounterHandle,
    /// Uniform message-drop counter: loss + partition + receiver-down, so
    /// every experiment reports total message loss under one key (timer
    /// drops stay separate — no message was on the wire).
    dropped: CounterHandle,
    dropped_receiver_down: CounterHandle,
    timer_dropped_node_down: CounterHandle,
    /// Timer drops under the `net.*` family so network-facing dashboards
    /// see them next to `net.dropped` without changing its semantics (a
    /// dropped timer never had a message on the wire). Same value as
    /// `timer.dropped_node_down`; registered invisibly like every handle.
    timer_dropped: CounterHandle,
    churn_up: CounterHandle,
    churn_down: CounterHandle,
    /// Messages duplicated / reorder-delayed by the chaos layer. Registered
    /// like every other handle but invisible in artifacts until chaos
    /// actually fires one.
    chaos_duplicated: CounterHandle,
    chaos_reordered: CounterHandle,
}

impl HotCounters {
    fn new(metrics: &mut Metrics) -> HotCounters {
        HotCounters {
            sent: metrics.counter_handle("net.sent"),
            sent_bytes: metrics.counter_handle("net.sent_bytes"),
            lost: metrics.counter_handle("net.lost"),
            delivered: metrics.counter_handle("net.delivered"),
            dropped: metrics.counter_handle("net.dropped"),
            dropped_receiver_down: metrics.counter_handle("net.dropped_receiver_down"),
            timer_dropped_node_down: metrics.counter_handle("timer.dropped_node_down"),
            timer_dropped: metrics.counter_handle("net.timer_dropped"),
            churn_up: metrics.counter_handle("churn.up"),
            churn_down: metrics.counter_handle("churn.down"),
            chaos_duplicated: metrics.counter_handle("chaos.duplicated"),
            chaos_reordered: metrics.counter_handle("chaos.reordered"),
        }
    }
}

/// Handle through which a protocol interacts with the simulated world.
pub struct Ctx<'a, M> {
    now: SimTime,
    id: NodeId,
    net: &'a mut Network,
    sched: &'a mut Scheduler<M>,
    rng: &'a mut SimRng,
    metrics: &'a mut Metrics,
    hot: HotCounters,
    #[cfg(feature = "trace")]
    tracer: &'a mut Tracer,
    #[cfg(feature = "probe")]
    prober: &'a mut Prober,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this protocol instance runs on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the simulation (global knowledge is fine for
    /// bootstrap lists; protocols should not otherwise rely on it).
    pub fn node_count(&self) -> usize {
        self.net.len()
    }

    /// Send `msg` of `bytes` wire size to `to`. Delivery is asynchronous and
    /// unreliable: the message is silently dropped if the receiver is down on
    /// arrival, if the link loses it, or if a partition separates the nodes.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: u64) {
        self.metrics.incr_handle(self.hot.sent, 1);
        self.metrics.incr_handle(self.hot.sent_bytes, bytes);
        if to == self.id {
            // Loopback: deliver after a negligible delay, never lost.
            let at = self.now + SimDuration::from_micros(1);
            let _key = self.push(
                at,
                EventKind::Deliver {
                    to,
                    from: self.id,
                    msg,
                },
            );
            trace_event!(
                self.tracer,
                _key,
                self.now,
                self.id,
                TraceKind::Send { to, bytes }
            );
            return;
        }
        match self.net.transmit(self.now, self.id, to, bytes, self.rng) {
            Ok(at) => {
                // Chaos duplication/reordering: identity (one untaken
                // branch, no draws) unless the chaos layer is enabled.
                let verdict = self.net.chaos_delivery(at);
                if verdict.reordered {
                    self.metrics.incr_handle(self.hot.chaos_reordered, 1);
                }
                match verdict.duplicate {
                    None => {
                        let _key = self.push(
                            verdict.at,
                            EventKind::Deliver {
                                to,
                                from: self.id,
                                msg,
                            },
                        );
                        trace_event!(
                            self.tracer,
                            _key,
                            self.now,
                            self.id,
                            TraceKind::Send { to, bytes }
                        );
                    }
                    Some(dup_at) => {
                        self.metrics.incr_handle(self.hot.chaos_duplicated, 1);
                        let _key = self.push(
                            verdict.at,
                            EventKind::Deliver {
                                to,
                                from: self.id,
                                msg: msg.clone(),
                            },
                        );
                        trace_event!(
                            self.tracer,
                            _key,
                            self.now,
                            self.id,
                            TraceKind::Send { to, bytes }
                        );
                        let _dup_key = self.push(
                            dup_at,
                            EventKind::Deliver {
                                to,
                                from: self.id,
                                msg,
                            },
                        );
                        trace_event!(
                            self.tracer,
                            _dup_key,
                            self.now,
                            self.id,
                            TraceKind::Send { to, bytes }
                        );
                    }
                }
            }
            Err(_failure) => {
                self.metrics.incr_handle(self.hot.lost, 1);
                self.metrics.incr_handle(self.hot.dropped, 1);
                trace_event!(
                    self.tracer,
                    0,
                    self.now,
                    self.id,
                    TraceKind::DropSend {
                        to,
                        bytes,
                        reason: match _failure {
                            SendFailure::Partitioned => DropReason::Partition,
                            SendFailure::Lost => DropReason::Loss,
                            SendFailure::ChaosLink => DropReason::ChaosLink,
                        },
                    }
                );
            }
        }
    }

    /// Send the same message to every node in `to`, in order. Semantically
    /// identical to calling [`Ctx::send`] once per recipient — same metrics,
    /// same link charging, same delivery ordering — but the payload is cloned
    /// only `to.len() - 1` times: the final recipient takes ownership. With
    /// `Rc`-shared payloads inside `M` (the pattern the protocol crates use
    /// for fan-out), every clone is a refcount bump rather than a deep copy.
    pub fn multicast(&mut self, to: &[NodeId], msg: M, bytes: u64) {
        if let Some((&last, rest)) = to.split_last() {
            for &t in rest {
                self.send(t, msg.clone(), bytes);
            }
            self.send(last, msg, bytes);
        }
    }

    /// Arm a timer that fires after `delay` with the given tag. There is no
    /// cancellation; use fresh tags and ignore stale ones.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        let at = self.now + delay;
        let node = self.id;
        let _key = self.push(at, EventKind::Timer { node, tag });
        trace_event!(
            self.tracer,
            _key,
            self.now,
            self.id,
            TraceKind::TimerSet { tag }
        );
    }

    /// Emit a named protocol trace point — the hook that ties a metric
    /// sample (a lookup latency, a hop count) to the event whose handler
    /// produced it. The record's key and causal parent are both the packed
    /// key of the currently dispatching event, so a provenance query can
    /// walk from the sample back through the message/timer chain that led
    /// to it. Conventionally `name` is the metric key being annotated.
    #[cfg(feature = "trace")]
    pub fn trace_point(&mut self, name: &'static str, value: f64) {
        let key = self.tracer.cur;
        self.tracer
            .emit(key, self.now, self.id, TraceKind::Point { name, value });
    }

    /// Trace-point no-op: the `trace` feature is compiled out, so this
    /// vanishes entirely. Protocol crates call it unconditionally.
    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    pub fn trace_point(&mut self, _name: &'static str, _value: f64) {}

    /// Emit a named probe signal — a substrate health sample (a lookup
    /// latency, a seeder count) delivered to the installed probe sink in
    /// canonical event order, stamped with this node and the current
    /// simulated time. One untaken branch when no sink is installed.
    /// Conventionally `name` is the metric key the sample annotates.
    #[cfg(feature = "probe")]
    pub fn probe_signal(&mut self, name: &'static str, value: f64) {
        if self.prober.on {
            self.prober.sink.on_signal(self.now, self.id, name, value);
        }
    }

    /// Probe-signal no-op: the `probe` feature is compiled out, so this
    /// vanishes entirely. Protocol crates call it unconditionally.
    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    pub fn probe_signal(&mut self, _name: &'static str, _value: f64) {}

    /// The deterministic RNG (shared engine-wide).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The run's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// This node's device profile (protocols may adapt to their own class).
    pub fn profile(&self) -> &DeviceProfile {
        self.net.profile(self.id)
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) -> u128 {
        #[cfg(feature = "probe")]
        self.prober.note_push(&kind);
        self.sched.push(at, kind)
    }
}

/// The simulation: a set of nodes each hosting one `P` instance, a network
/// model, an event queue, and shared RNG + metrics.
pub struct Simulation<P: Protocol> {
    protocols: Vec<P>,
    net: Network,
    sched: Scheduler<P::Msg>,
    time: SimTime,
    rng: SimRng,
    metrics: Metrics,
    hot: HotCounters,
    events: u64,
    churn_enabled: Vec<bool>,
    started: Vec<bool>,
    #[cfg(feature = "trace")]
    tracer: Tracer,
    #[cfg(feature = "probe")]
    prober: Prober,
}

impl<P: Protocol> Simulation<P> {
    /// Create an empty simulation with the given RNG seed.
    ///
    /// With the `trace` feature compiled in, a sink factory installed via
    /// [`crate::trace::with_thread_sink`] is consulted here — that is how a
    /// harness wires a flight recorder into simulations constructed deep
    /// inside `fn(seed) -> Metrics` experiment entry points without
    /// changing their signatures. Absent a factory, the no-op sink is used
    /// and every tap site reduces to one untaken branch.
    ///
    /// A shard count installed via [`crate::shard::with_shards`] is applied
    /// the same way (`--shards N` in the harness); the default is one shard,
    /// i.e. exactly today's serial engine. Sharding and tracing compose:
    /// the sharded dispatch order is the serial order by construction, so
    /// trace records are byte-identical at any shard count and no per-shard
    /// sink merging is needed (that is the explicit trace-compatibility
    /// choice — one sink, fed in canonical order from the dispatch thread).
    pub fn new(seed: u64) -> Simulation<P> {
        let mut metrics = Metrics::new();
        let hot = HotCounters::new(&mut metrics);
        #[cfg(feature = "trace")]
        let tracer = {
            let (sink, on): (Box<dyn TraceSink>, bool) = match crate::trace::make_thread_sink() {
                Some(sink) => (sink, true),
                None => (Box::new(NoopSink), false),
            };
            Tracer {
                sink,
                on,
                cur: 0,
                seed,
            }
        };
        // The probe factory (`crate::probe::with_thread_probe`) is consulted
        // the same way as the trace factory: that is how a harness samples
        // simulations constructed deep inside experiment entry points.
        #[cfg(feature = "probe")]
        let prober = {
            let (sink, on, every): (Box<dyn ProbeSink>, bool, u64) =
                match crate::probe::make_thread_probe() {
                    Some((sink, cadence)) => (sink, true, cadence.micros().max(1)),
                    None => (Box::new(NoopProbe), false, u64::MAX),
                };
            Prober {
                sink,
                on,
                every,
                next_at: every,
                pending: 0,
                depth: Vec::new(),
                seed,
            }
        };
        let mut sim = Simulation {
            protocols: Vec::new(),
            net: Network::new(),
            sched: Scheduler::new(),
            time: SimTime::ZERO,
            rng: SimRng::new(seed),
            metrics,
            hot,
            events: 0,
            churn_enabled: Vec::new(),
            started: Vec::new(),
            #[cfg(feature = "trace")]
            tracer,
            #[cfg(feature = "probe")]
            prober,
        };
        let (shards, workers) = crate::shard::configured_shards();
        if shards > 1 {
            sim.set_shards_with(shards, workers);
        }
        trace_event!(
            sim.tracer,
            0,
            SimTime::ZERO,
            TRACE_SIM_NODE,
            TraceKind::SimStart { seed }
        );
        #[cfg(feature = "probe")]
        if sim.prober.on {
            sim.prober.sink.on_sim_start(seed);
        }
        sim
    }

    /// Set the shard count ([`ShardWorkers::Auto`] execution). One shard —
    /// the default — is exactly the serial engine, running today's code
    /// path. More shards parallelize event-heap maintenance across lanes
    /// while dispatching every handler on this thread in canonical key
    /// order, so metrics, traces and protocol state are byte-identical at
    /// any shard count (see [`crate::shard`] for the argument). May be
    /// called at any point between `run_*` calls: pending events are
    /// re-routed with their keys — and therefore the schedule — unchanged.
    pub fn set_shards(&mut self, shards: u32) {
        self.set_shards_with(shards, ShardWorkers::Auto);
    }

    /// [`Simulation::set_shards`] with an explicit worker mode (tests use
    /// [`ShardWorkers::Threads`] to exercise the threaded path regardless
    /// of host core count).
    pub fn set_shards_with(&mut self, shards: u32, workers: ShardWorkers) {
        let shards = shards.max(1);
        if shards == self.shards() {
            if let Some(state) = &mut self.sched.shard {
                state.mode = workers;
            }
            return;
        }
        let pending: Vec<Event<P::Msg>> = match self.sched.shard.take() {
            None => mem::take(&mut self.sched.serial).into_vec(),
            Some(mut state) => state.drain_all(),
        };
        if shards == 1 {
            self.sched.serial.extend(pending);
        } else {
            let mut state = ShardState::new(shards as usize, workers);
            for ev in pending {
                state.route(ev.key, ev.kind);
            }
            self.sched.shard = Some(Box::new(state));
        }
    }

    /// Current shard count (1 = serial engine).
    pub fn shards(&self) -> u32 {
        self.sched
            .shard
            .as_ref()
            .map_or(1, |state| state.shards() as u32)
    }

    /// Sharded-execution counters (all zero in serial mode). Not part of
    /// the metrics artifact — see [`ShardStats`] for why.
    pub fn shard_stats(&self) -> ShardStats {
        self.sched
            .shard
            .as_ref()
            .map_or_else(ShardStats::default, |state| state.stats)
    }

    /// Install a trace sink on an already-constructed simulation and enable
    /// recording. Emits a `SimStart` record so the sink sees the seed.
    /// Tracing never touches the RNG or metrics, so the simulated outcome
    /// is identical with or without a sink.
    #[cfg(feature = "trace")]
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.sink = sink;
        self.tracer.on = true;
        let seed = self.tracer.seed;
        self.tracer
            .emit(0, self.time, TRACE_SIM_NODE, TraceKind::SimStart { seed });
    }

    /// Install a probe sink with the given sampling cadence on an
    /// already-constructed simulation. Probing never touches the RNG or
    /// metrics counters the simulation would otherwise produce, so the
    /// simulated outcome is identical with or without a sink (`anomaly.*`
    /// counters fire only when a sink returns anomalies). For exact queue
    /// accounting install the sink before events are scheduled; installed
    /// later, queue statistics start approximate and converge as the
    /// pre-existing events drain.
    #[cfg(feature = "probe")]
    pub fn set_probe_sink(&mut self, mut sink: Box<dyn ProbeSink>, cadence: SimDuration) {
        sink.on_sim_start(self.prober.seed);
        let every = cadence.micros().max(1);
        self.prober.sink = sink;
        self.prober.on = true;
        self.prober.every = every;
        self.prober.next_at = (self.time.micros() / every + 1).saturating_mul(every);
        self.prober.pending = self.sched.len() as u64;
    }

    /// Add a node of the given device class. Its `on_start` runs at the time
    /// of the first `run_*` call (or immediately if the sim already ran).
    pub fn add_node(&mut self, proto: P, class: DeviceClass) -> NodeId {
        self.add_node_with_profile(proto, class.profile())
    }

    /// Add a node with an explicit (possibly customized) profile.
    pub fn add_node_with_profile(&mut self, proto: P, profile: DeviceProfile) -> NodeId {
        let id = NodeId(self.protocols.len() as u32);
        self.protocols.push(proto);
        self.net.add_node(profile);
        self.churn_enabled.push(false);
        self.started.push(false);
        id
    }

    /// Enable the class-calibrated churn process for a node: alternating
    /// exponentially-distributed up/down periods matching its duty cycle.
    pub fn enable_churn(&mut self, id: NodeId) {
        self.churn_enabled[id.index()] = true;
        // Schedule the first transition out of the initial "up" period.
        let mean_up = self.net.profile(id).mean_session.secs_f64();
        let delay = SimDuration::from_secs_f64(self.rng.exp(mean_up));
        self.push(self.time + delay, EventKind::ChurnDown(id));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.net.is_up(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.protocols.len()
    }

    /// Inspect a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.protocols[id.index()]
    }

    /// Mutate a node's protocol state *without* a context (pure state poking;
    /// prefer [`Simulation::with_ctx`] for anything that must interact).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.protocols[id.index()]
    }

    /// Run a closure against a node's protocol with a live [`Ctx`] — this is
    /// how the experiment harness injects user actions ("post a message",
    /// "store a file") into a running simulation. Returns `None` without
    /// running the closure if the node is down.
    pub fn with_ctx<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        self.ensure_started();
        if !self.net.is_up(id) {
            return None;
        }
        #[cfg(feature = "trace")]
        {
            // External injection: records emitted under this closure have no
            // causal parent inside the simulation.
            self.tracer.cur = 0;
        }
        let mut ctx = Ctx {
            now: self.time,
            id,
            net: &mut self.net,
            sched: &mut self.sched,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            hot: self.hot,
            #[cfg(feature = "trace")]
            tracer: &mut self.tracer,
            #[cfg(feature = "probe")]
            prober: &mut self.prober,
        };
        Some(f(&mut self.protocols[id.index()], &mut ctx))
    }

    /// Force a node down (failure injection). Triggers `on_down`. Killing an
    /// already-down node is an idempotent no-op: `churn.down` is not
    /// double-counted and `on_down` does not re-fire.
    pub fn kill(&mut self, id: NodeId) {
        self.ensure_started();
        if self.net.is_up(id) {
            #[cfg(feature = "trace")]
            {
                self.tracer.cur = 0;
            }
            self.transition(id, false);
        }
    }

    /// Force a node back up (repair). Triggers `on_up`. Reviving a live node
    /// is an idempotent no-op: `churn.up` is not double-counted and `on_up`
    /// does not re-fire.
    pub fn revive(&mut self, id: NodeId) {
        self.ensure_started();
        if !self.net.is_up(id) {
            #[cfg(feature = "trace")]
            {
                self.tracer.cur = 0;
            }
            self.transition(id, true);
        }
    }

    /// Assign a node to a partition group; messages only flow within a group.
    pub fn set_partition(&mut self, id: NodeId, group: u32) {
        self.net.set_partition(id, group);
        #[cfg(feature = "trace")]
        {
            self.tracer.cur = 0;
        }
        trace_event!(
            self.tracer,
            0,
            self.time,
            id,
            TraceKind::Partition { group }
        );
    }

    /// Heal all partitions.
    pub fn heal_partitions(&mut self) {
        self.net.heal_partitions();
    }

    /// Set the global random-loss rate for all links.
    pub fn set_loss_rate(&mut self, p: f64) {
        self.net.set_loss_rate(p);
    }

    /// Enable the chaos fault-injection layer with its own RNG stream
    /// (seeded independently of the main simulation stream so enabling
    /// chaos never perturbs the main draw sequence). Idempotent: calling
    /// again resets chaos fault state.
    pub fn enable_chaos(&mut self, seed: u64) {
        self.net.enable_chaos(seed);
    }

    /// Whether the chaos layer is enabled.
    pub fn chaos_enabled(&self) -> bool {
        self.net.chaos_enabled()
    }

    /// Bring a node's chaos link down/up (flapping links). Unlike
    /// [`Simulation::kill`], the node itself keeps running — only its
    /// traffic is dropped. Requires [`Simulation::enable_chaos`].
    pub fn set_chaos_link(&mut self, id: NodeId, up: bool) {
        self.net.set_chaos_link(id, up);
    }

    /// Assign a node to a chaos group for *directed* blocks (asymmetric
    /// partitions). Requires [`Simulation::enable_chaos`].
    pub fn set_chaos_group(&mut self, id: NodeId, group: u32) {
        self.net.set_chaos_group(id, group);
    }

    /// Block messages from `from_group` to `to_group` (one direction only:
    /// the reverse keeps flowing unless blocked separately). Requires
    /// [`Simulation::enable_chaos`].
    pub fn chaos_block_directed(&mut self, from_group: u32, to_group: u32) {
        self.net.chaos_block_directed(from_group, to_group);
    }

    /// Remove all directed chaos blocks. Requires
    /// [`Simulation::enable_chaos`].
    pub fn chaos_clear_directed(&mut self) {
        self.net.chaos_clear_directed();
    }

    /// Scale all propagation latency by `f` (latency storms); 1.0 = off.
    /// Requires [`Simulation::enable_chaos`].
    pub fn set_chaos_latency_factor(&mut self, f: f64) {
        self.net.set_chaos_latency_factor(f);
    }

    /// Duplicate delivered messages with probability `p`. Requires
    /// [`Simulation::enable_chaos`].
    pub fn set_chaos_dup_rate(&mut self, p: f64) {
        self.net.set_chaos_dup_rate(p);
    }

    /// Add a uniform extra delivery delay in `[0, bound]` per message
    /// (bounded reordering). Requires [`Simulation::enable_chaos`].
    pub fn set_chaos_reorder(&mut self, bound: SimDuration) {
        self.net.set_chaos_reorder(bound);
    }

    /// Record a named trace point from outside any protocol handler (the
    /// chaos controller uses this for the `chaos.*` span family). No-op
    /// without the `trace` feature.
    #[cfg(feature = "trace")]
    pub fn trace_note(&mut self, name: &'static str, value: f64) {
        self.tracer.cur = 0;
        trace_event!(
            self.tracer,
            0,
            self.time,
            TRACE_SIM_NODE,
            TraceKind::Point { name, value }
        );
    }

    /// Record a named trace point (no-op: `trace` feature disabled).
    #[cfg(not(feature = "trace"))]
    pub fn trace_note(&mut self, _name: &'static str, _value: f64) {}

    /// Emit a named probe signal from outside any protocol handler (market
    /// audits, harness-level controllers); stamped with
    /// [`crate::probe::PROBE_SIM_NODE`]. One untaken branch when no sink is
    /// installed.
    #[cfg(feature = "probe")]
    pub fn probe_note(&mut self, name: &'static str, value: f64) {
        if self.prober.on {
            self.prober
                .sink
                .on_signal(self.time, crate::probe::PROBE_SIM_NODE, name, value);
        }
    }

    /// Probe-signal no-op (`probe` feature disabled).
    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    pub fn probe_note(&mut self, _name: &'static str, _value: f64) {}

    /// Whether a probe sink is installed. Callers with a non-trivial signal
    /// to compute (rollups over collections) should gate on this so the
    /// computation disappears along with the probes.
    #[cfg(feature = "probe")]
    pub fn probe_active(&self) -> bool {
        self.prober.on
    }

    /// Probe-active no-op (`probe` feature disabled): always `false`, so
    /// gated signal computations constant-fold away.
    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    pub fn probe_active(&self) -> bool {
        false
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (for harness-level annotations).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The engine RNG (for harness-level decisions that must stay on the same
    /// deterministic stream).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Process events until the queue is empty or `limit` is reached; the
    /// clock ends at `limit` (or the last event, whichever is later-capped).
    pub fn run_until(&mut self, limit: SimTime) {
        self.ensure_started();
        if self.sched.shard.is_some() {
            self.run_windows(limit, None);
        } else {
            while let Some(ev) = self.sched.serial.peek() {
                if ev.at() > limit {
                    break;
                }
                let ev = self.sched.serial.pop().expect("peeked");
                debug_assert!(ev.at() >= self.time, "time went backwards");
                self.time = ev.at();
                self.events += 1;
                #[cfg(feature = "trace")]
                {
                    self.tracer.cur = ev.key;
                }
                #[cfg(feature = "probe")]
                self.probe_tick(&ev.kind);
                self.dispatch(ev.kind);
            }
        }
        if self.time < limit {
            self.time = limit;
        }
    }

    /// Run for a further duration of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let limit = self.time + d;
        self.run_until(limit);
    }

    /// Run until no events remain (guard: panics after `max_events` to catch
    /// livelocked protocols in tests).
    pub fn run_idle(&mut self, max_events: u64) {
        self.ensure_started();
        if self.sched.shard.is_some() {
            self.run_windows(SimTime::MAX, Some(max_events));
            return;
        }
        let mut n = 0u64;
        while let Some(ev) = self.sched.serial.pop() {
            self.time = ev.at();
            self.events += 1;
            #[cfg(feature = "trace")]
            {
                self.tracer.cur = ev.key;
            }
            #[cfg(feature = "probe")]
            self.probe_tick(&ev.kind);
            self.dispatch(ev.kind);
            n += 1;
            assert!(n < max_events, "run_idle exceeded {max_events} events");
        }
    }

    /// Sharded execution of events with time `<= limit`: lookahead-bounded
    /// windows; lanes integrate + drain in parallel (or inline), the
    /// dispatch thread commits in canonical key order. `guard` carries
    /// `run_idle`'s livelock bound.
    fn run_windows(&mut self, limit: SimTime, guard: Option<u64>) {
        let state = self.sched.shard.as_mut().expect("sharded mode");
        let threaded = match state.mode {
            ShardWorkers::Inline => false,
            ShardWorkers::Threads => true,
            ShardWorkers::Auto => std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false),
        };
        // Lanes leave the shard state for the duration of the run: inline
        // they are driven from this thread, threaded they move into scoped
        // workers that only ever see `Copy` (key, slot) pairs — payloads
        // (which may hold `Rc`s) stay here on the dispatch thread.
        let mut lanes = mem::take(&mut state.lanes);
        if threaded {
            let workers = lanes.len();
            std::thread::scope(|scope| {
                let (out_tx, out_rx) = mpsc::channel::<LaneOut>();
                let (back_tx, back_rx) = mpsc::channel();
                let mut cmd_txs = Vec::with_capacity(workers);
                for (lane, mut heap) in lanes.drain(..).enumerate() {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<LaneCmd>();
                    cmd_txs.push(cmd_tx);
                    let out_tx = out_tx.clone();
                    let back_tx = back_tx.clone();
                    scope.spawn(move || {
                        while let Ok(cmd) = cmd_rx.recv() {
                            if out_tx.send(lane_window(&mut heap, lane, cmd)).is_err() {
                                break;
                            }
                        }
                        // Dispatch side hung up (or panicked): hand the
                        // lane back so the sim survives the run.
                        let _ = back_tx.send((lane, heap));
                    });
                }
                self.window_loop(limit, guard, &mut |cmds: Vec<LaneCmd>| {
                    for (tx, cmd) in cmd_txs.iter().zip(cmds) {
                        tx.send(cmd).expect("lane worker alive");
                    }
                    (0..workers)
                        .map(|_| out_rx.recv().expect("lane worker alive"))
                        .collect()
                });
                drop(cmd_txs);
                let mut returned: Vec<Option<_>> = (0..workers).map(|_| None).collect();
                for _ in 0..workers {
                    let (lane, heap) = back_rx.recv().expect("lane worker returns heap");
                    returned[lane] = Some(heap);
                }
                lanes = returned
                    .into_iter()
                    .map(|h| h.expect("all lanes"))
                    .collect();
            });
        } else {
            let lanes = &mut lanes;
            self.window_loop(limit, guard, &mut |cmds: Vec<LaneCmd>| {
                cmds.into_iter()
                    .zip(lanes.iter_mut())
                    .enumerate()
                    .map(|(lane, (cmd, heap))| lane_window(heap, lane, cmd))
                    .collect()
            });
        }
        self.sched.shard.as_mut().expect("sharded mode").lanes = lanes;
    }

    /// The window loop proper, independent of how lane work is executed:
    /// `exec` runs one `LaneCmd` per lane and returns their `LaneOut`s.
    fn window_loop(
        &mut self,
        limit: SimTime,
        guard: Option<u64>,
        exec: &mut dyn FnMut(Vec<LaneCmd>) -> Vec<LaneOut>,
    ) {
        let mut dispatched = 0u64;
        loop {
            let state = self.sched.shard.as_mut().expect("sharded mode");
            let Some(first) = state.next_key() else { break };
            let t0 = (first >> 64) as u64;
            if t0 > limit.micros() {
                break;
            }
            // The lookahead is recomputed every window, so chaos latency
            // storms (`latency_factor`) and partition changes take effect
            // at the next barrier. Clamped to >= 1 us for guaranteed
            // progress: a too-large window is safe (sub-window arrivals are
            // absorbed through the overflow heap), a zero window would
            // never advance.
            let lookahead = self.net.lookahead().micros().max(1);
            let w_end = t0
                .saturating_add(lookahead)
                .min(limit.micros().saturating_add(1));
            let w_end_key = (w_end as u128) << 64;
            let cmds = state.make_cmds(w_end_key);
            let outs = exec(cmds);
            let state = self.sched.shard.as_mut().expect("sharded mode");
            state.begin_window(w_end_key, outs);
            while let Some(ev) = self
                .sched
                .shard
                .as_mut()
                .expect("sharded mode")
                .next_event()
            {
                debug_assert!(ev.at() >= self.time, "time went backwards");
                self.time = ev.at();
                self.events += 1;
                #[cfg(feature = "trace")]
                {
                    self.tracer.cur = ev.key;
                }
                #[cfg(feature = "probe")]
                self.probe_tick(&ev.kind);
                self.dispatch(ev.kind);
                if let Some(max) = guard {
                    dispatched += 1;
                    assert!(dispatched < max, "run_idle exceeded {max} events");
                }
            }
            self.sched
                .shard
                .as_mut()
                .expect("sharded mode")
                .end_window();
        }
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.sched.len()
    }

    /// Total events dispatched so far (throughput accounting for benchmarks;
    /// not part of the metrics artifact).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    fn ensure_started(&mut self) {
        for i in 0..self.protocols.len() {
            if !self.started[i] {
                self.started[i] = true;
                let id = NodeId(i as u32);
                #[cfg(feature = "trace")]
                {
                    // `on_start` runs outside any event handler.
                    self.tracer.cur = 0;
                }
                let mut ctx = Ctx {
                    now: self.time,
                    id,
                    net: &mut self.net,
                    sched: &mut self.sched,
                    rng: &mut self.rng,
                    metrics: &mut self.metrics,
                    hot: self.hot,
                    #[cfg(feature = "trace")]
                    tracer: &mut self.tracer,
                    #[cfg(feature = "probe")]
                    prober: &mut self.prober,
                };
                self.protocols[i].on_start(&mut ctx);
            }
        }
    }

    fn push(&mut self, at: SimTime, kind: EventKind<P::Msg>) -> u128 {
        #[cfg(feature = "probe")]
        self.prober.note_push(&kind);
        self.sched.push(at, kind)
    }

    /// Per-dispatch probe bookkeeping: maintain queue counts, and sample a
    /// frame when the clock reaches the next cadence boundary. Called with
    /// the event already popped, after the tracer's causal cursor is set, so
    /// anomaly trace points parent to the event that triggered the sample.
    #[cfg(feature = "probe")]
    #[inline]
    fn probe_tick(&mut self, kind: &EventKind<P::Msg>) {
        self.prober.note_dispatch(kind);
        if self.prober.on && self.time.micros() >= self.prober.next_at {
            self.probe_frame();
        }
    }

    /// Build and deliver one probe frame; cold — runs once per cadence
    /// boundary, never on the per-event path.
    #[cfg(feature = "probe")]
    #[cold]
    fn probe_frame(&mut self) {
        let every = self.prober.every;
        self.prober.next_at = (self.time.micros() / every + 1).saturating_mul(every);
        let mut queue_max_depth = 0u32;
        let mut queue_max_node = 0u32;
        let mut queue_nonzero = 0u32;
        for (ix, &d) in self.prober.depth.iter().enumerate() {
            if d > 0 {
                queue_nonzero += 1;
                if d > queue_max_depth {
                    queue_max_depth = d;
                    queue_max_node = ix as u32;
                }
            }
        }
        let (
            uplink_max_backlog_secs,
            uplink_busy_nodes,
            downlink_max_backlog_secs,
            downlink_busy_nodes,
        ) = self.net.backlog_stats(self.time);
        let frame = ProbeFrame {
            now: self.time,
            events: self.events,
            pending: self.prober.pending,
            queue_max_depth,
            queue_max_node: NodeId(queue_max_node),
            queue_nonzero,
            uplink_max_backlog_secs,
            uplink_busy_nodes,
            downlink_max_backlog_secs,
            downlink_busy_nodes,
            metrics: &self.metrics,
        };
        let anomalies = self.prober.sink.on_frame(&frame);
        for a in anomalies {
            self.metrics.incr(a.kind, 1);
            trace_event!(
                self.tracer,
                self.tracer.cur,
                self.time,
                TRACE_SIM_NODE,
                TraceKind::Point {
                    name: a.kind,
                    value: a.value,
                }
            );
        }
    }

    fn transition(&mut self, id: NodeId, up: bool) {
        // `kill`/`revive` guard with `is_up` so repeated calls are
        // idempotent no-ops; a transition that does not actually change
        // state would double-count `churn.up`/`churn.down`.
        debug_assert_ne!(
            self.net.is_up(id),
            up,
            "transition({id:?}, {up}) must change node state"
        );
        self.net.set_up(id, up);
        let h = if up {
            self.hot.churn_up
        } else {
            self.hot.churn_down
        };
        self.metrics.incr_handle(h, 1);
        trace_event!(
            self.tracer,
            self.tracer.cur,
            self.time,
            id,
            if up {
                TraceKind::ChurnUp
            } else {
                TraceKind::ChurnDown
            }
        );
        let mut ctx = Ctx {
            now: self.time,
            id,
            net: &mut self.net,
            sched: &mut self.sched,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            hot: self.hot,
            #[cfg(feature = "trace")]
            tracer: &mut self.tracer,
            #[cfg(feature = "probe")]
            prober: &mut self.prober,
        };
        if up {
            self.protocols[id.index()].on_up(&mut ctx);
        } else {
            self.protocols[id.index()].on_down(&mut ctx);
        }
    }

    fn dispatch(&mut self, kind: EventKind<P::Msg>) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                if !self.net.is_up(to) {
                    self.metrics.incr_handle(self.hot.dropped_receiver_down, 1);
                    self.metrics.incr_handle(self.hot.dropped, 1);
                    trace_event!(
                        self.tracer,
                        self.tracer.cur,
                        self.time,
                        to,
                        TraceKind::DropDeliver {
                            from,
                            reason: DropReason::ReceiverDown,
                        }
                    );
                    return;
                }
                self.metrics.incr_handle(self.hot.delivered, 1);
                trace_event!(
                    self.tracer,
                    self.tracer.cur,
                    self.time,
                    to,
                    TraceKind::Deliver { from }
                );
                let mut ctx = Ctx {
                    now: self.time,
                    id: to,
                    net: &mut self.net,
                    sched: &mut self.sched,
                    rng: &mut self.rng,
                    metrics: &mut self.metrics,
                    hot: self.hot,
                    #[cfg(feature = "trace")]
                    tracer: &mut self.tracer,
                    #[cfg(feature = "probe")]
                    prober: &mut self.prober,
                };
                self.protocols[to.index()].on_message(&mut ctx, from, msg);
            }
            EventKind::Timer { node, tag } => {
                if !self.net.is_up(node) {
                    self.metrics
                        .incr_handle(self.hot.timer_dropped_node_down, 1);
                    self.metrics.incr_handle(self.hot.timer_dropped, 1);
                    trace_event!(
                        self.tracer,
                        self.tracer.cur,
                        self.time,
                        node,
                        TraceKind::TimerDrop { tag }
                    );
                    return;
                }
                trace_event!(
                    self.tracer,
                    self.tracer.cur,
                    self.time,
                    node,
                    TraceKind::TimerFire { tag }
                );
                let mut ctx = Ctx {
                    now: self.time,
                    id: node,
                    net: &mut self.net,
                    sched: &mut self.sched,
                    rng: &mut self.rng,
                    metrics: &mut self.metrics,
                    hot: self.hot,
                    #[cfg(feature = "trace")]
                    tracer: &mut self.tracer,
                    #[cfg(feature = "probe")]
                    prober: &mut self.prober,
                };
                self.protocols[node.index()].on_timer(&mut ctx, tag);
            }
            EventKind::ChurnDown(id) => {
                if !self.churn_enabled[id.index()] {
                    return;
                }
                if self.net.is_up(id) {
                    self.transition(id, false);
                }
                let mean_down = self.net.profile(id).mean_offtime().secs_f64();
                let delay = SimDuration::from_secs_f64(self.rng.exp(mean_down.max(1.0)));
                self.push(self.time + delay, EventKind::ChurnUp(id));
            }
            EventKind::ChurnUp(id) => {
                if !self.churn_enabled[id.index()] {
                    return;
                }
                if !self.net.is_up(id) {
                    self.transition(id, true);
                }
                let mean_up = self.net.profile(id).mean_session.secs_f64();
                let delay = SimDuration::from_secs_f64(self.rng.exp(mean_up.max(1.0)));
                self.push(self.time + delay, EventKind::ChurnDown(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong protocol used to exercise the engine.
    #[derive(Default)]
    struct PingPong {
        pings_received: u32,
        pongs_received: u32,
        timer_fires: u32,
        ups: u32,
        downs: u32,
    }

    #[derive(Clone)]
    enum PpMsg {
        Ping,
        Pong,
    }

    impl Protocol for PingPong {
        type Msg = PpMsg;

        fn on_message(&mut self, ctx: &mut Ctx<'_, PpMsg>, from: NodeId, msg: PpMsg) {
            match msg {
                PpMsg::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, PpMsg::Pong, 64);
                }
                PpMsg::Pong => self.pongs_received += 1,
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, PpMsg>, _tag: u64) {
            self.timer_fires += 1;
        }

        fn on_down(&mut self, _ctx: &mut Ctx<'_, PpMsg>) {
            self.downs += 1;
        }

        fn on_up(&mut self, _ctx: &mut Ctx<'_, PpMsg>) {
            self.ups += 1;
        }
    }

    fn two_node_sim() -> (Simulation<PingPong>, NodeId, NodeId) {
        let mut sim = Simulation::new(1);
        let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
        let b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
        (sim, a, b)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, a, b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 1);
        assert_eq!(sim.node(a).pongs_received, 1);
        assert_eq!(sim.metrics().counter("net.delivered"), 2);
    }

    #[test]
    fn messages_to_down_node_dropped() {
        let (mut sim, a, b) = two_node_sim();
        sim.kill(b);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 0);
        assert_eq!(sim.metrics().counter("net.dropped_receiver_down"), 1);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        assert_eq!(sim.node(b).downs, 1);
        sim.revive(b);
        assert_eq!(sim.node(b).ups, 1);
    }

    #[test]
    fn kill_and_revive_are_idempotent_and_pin_churn_counters() {
        let (mut sim, _a, b) = two_node_sim();
        sim.kill(b);
        sim.kill(b); // no-op: already down
        assert_eq!(sim.metrics().counter("churn.down"), 1);
        assert_eq!(sim.node(b).downs, 1);
        sim.revive(b);
        sim.revive(b); // no-op: already up
        assert_eq!(sim.metrics().counter("churn.up"), 1);
        assert_eq!(sim.node(b).ups, 1);
        // A second full cycle counts exactly once more.
        sim.kill(b);
        sim.revive(b);
        assert_eq!(sim.metrics().counter("churn.down"), 2);
        assert_eq!(sim.metrics().counter("churn.up"), 2);
    }

    #[test]
    fn chaos_duplication_delivers_twice_and_counts() {
        let (mut sim, a, b) = two_node_sim();
        sim.enable_chaos(77);
        sim.set_chaos_dup_rate(1.0);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 2, "dup must deliver twice");
        assert!(sim.metrics().counter("chaos.duplicated") >= 1);
    }

    #[test]
    fn chaos_link_down_drops_and_counts() {
        let (mut sim, a, b) = two_node_sim();
        sim.enable_chaos(77);
        sim.set_chaos_link(b, false);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 0);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        // The node itself is still up — only its traffic was dropped.
        assert_eq!(sim.node(b).downs, 0);
        sim.set_chaos_link(b, true);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 1);
    }

    #[test]
    fn chaos_runs_are_deterministic_for_fixed_seeds() {
        let run = || {
            let (mut sim, a, b) = two_node_sim();
            sim.enable_chaos(13);
            sim.set_chaos_dup_rate(0.5);
            sim.set_chaos_reorder(SimDuration::from_millis(20));
            for _ in 0..50 {
                sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                sim.run_for(SimDuration::from_millis(100));
            }
            (
                sim.node(b).pings_received,
                sim.metrics().counter("chaos.duplicated"),
                sim.metrics().counter("chaos.reordered"),
            )
        };
        let (a1, d1, r1) = run();
        let (a2, d2, r2) = run();
        assert_eq!((a1, d1, r1), (a2, d2, r2));
        assert!(d1 > 0 && r1 > 0, "chaos must actually fire in this run");
    }

    #[test]
    fn with_ctx_on_down_node_returns_none() {
        let (mut sim, _a, b) = two_node_sim();
        sim.kill(b);
        assert!(sim.with_ctx(b, |_, _| ()).is_none());
    }

    #[test]
    fn timers_fire_in_order_and_advance_clock() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(5), 1);
            ctx.set_timer(SimDuration::from_secs(2), 2);
        });
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.node(a).timer_fires, 1);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(sim.node(a).timer_fires, 2);
    }

    #[test]
    fn timer_on_down_node_is_dropped() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| ctx.set_timer(SimDuration::from_secs(1), 7));
        sim.kill(a);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.node(a).timer_fires, 0);
        assert_eq!(sim.metrics().counter("timer.dropped_node_down"), 1);
    }

    #[test]
    fn partitions_block_traffic() {
        let (mut sim, a, b) = two_node_sim();
        sim.set_partition(a, 0);
        sim.set_partition(b, 1);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 0);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        sim.heal_partitions();
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 1);
    }

    #[test]
    fn loss_rate_one_drops_everything() {
        let (mut sim, a, b) = two_node_sim();
        sim.set_loss_rate(1.0);
        for _ in 0..10 {
            sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
        }
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(b).pings_received, 0);
        assert_eq!(sim.metrics().counter("net.lost"), 10);
        assert_eq!(sim.metrics().counter("net.dropped"), 10);
    }

    #[test]
    fn timer_drops_not_counted_as_message_drops() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| ctx.set_timer(SimDuration::from_secs(1), 7));
        sim.kill(a);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.metrics().counter("timer.dropped_node_down"), 1);
        assert_eq!(sim.metrics().counter("net.dropped"), 0);
    }

    #[test]
    fn timer_drops_surface_under_net_timer_dropped() {
        // `net.timer_dropped` mirrors `timer.dropped_node_down` so timer
        // drops sit next to the `net.*` family in dashboards, while
        // `net.dropped` stays message-only (pinned above).
        let (mut sim, a, _b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| {
            ctx.set_timer(SimDuration::from_secs(1), 7);
            ctx.set_timer(SimDuration::from_secs(1), 8);
        });
        sim.kill(a);
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.metrics().counter("net.timer_dropped"), 2);
        assert_eq!(sim.metrics().counter("timer.dropped_node_down"), 2);
        assert_eq!(sim.metrics().counter("net.dropped"), 0);
        // And it stays invisible in artifacts when no timer was dropped.
        let (mut clean, c, d) = two_node_sim();
        clean.with_ctx(c, |_, ctx| ctx.send(d, PpMsg::Ping, 64));
        clean.run_for(SimDuration::from_secs(1));
        assert!(!clean
            .metrics()
            .counters()
            .any(|(k, _)| k == "net.timer_dropped"));
    }

    #[test]
    fn loopback_delivery_works() {
        let (mut sim, a, _b) = two_node_sim();
        sim.with_ctx(a, |_, ctx| {
            let me = ctx.id();
            ctx.send(me, PpMsg::Pong, 8);
        });
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node(a).pongs_received, 1);
    }

    #[test]
    fn churn_produces_transitions() {
        let mut sim: Simulation<PingPong> = Simulation::new(3);
        let mut profile = DeviceClass::PersonalComputer.profile();
        profile.mean_session = SimDuration::from_secs(10);
        profile.duty_cycle = 0.5;
        let n = sim.add_node_with_profile(PingPong::default(), profile);
        sim.enable_churn(n);
        sim.run_for(SimDuration::from_mins(30));
        assert!(sim.node(n).downs >= 10, "downs = {}", sim.node(n).downs);
        assert!(sim.node(n).ups >= 10, "ups = {}", sim.node(n).ups);
        // Transitions alternate, so counts differ by at most one.
        let (u, d) = (sim.node(n).ups, sim.node(n).downs);
        assert!(u.abs_diff(d) <= 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> (u32, u64, u64, SimTime) {
            let mut sim: Simulation<PingPong> = Simulation::new(seed);
            let mut nodes = Vec::new();
            for _ in 0..10 {
                let n = sim.add_node(PingPong::default(), DeviceClass::PersonalComputer);
                sim.enable_churn(n);
                nodes.push(n);
            }
            for i in 0..10 {
                let (src, dst) = (nodes[i], nodes[(i + 1) % 10]);
                sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 100));
            }
            sim.run_for(SimDuration::from_hours(1));
            let pings: u32 = nodes.iter().map(|&n| sim.node(n).pings_received).sum();
            (
                pings,
                sim.metrics().counter("net.delivered"),
                sim.metrics().counter("churn.down"),
                sim.now(),
            )
        };
        assert_eq!(run(99), run(99));
        // Different seeds should (with overwhelming probability) diverge in
        // churn transition counts over an hour.
        assert_ne!(run(99).2, run(100).2);
    }

    #[cfg(feature = "trace")]
    mod trace_tests {
        use super::*;
        use crate::trace::{DropReason, SharedRecorder, TraceKind};

        fn recorded<R>(
            f: impl FnOnce(&mut Simulation<PingPong>) -> R,
        ) -> (SharedRecorder, Simulation<PingPong>, R) {
            let rec = SharedRecorder::new(1024);
            let mut sim: Simulation<PingPong> = Simulation::new(1);
            sim.set_trace_sink(Box::new(rec.clone()));
            let r = f(&mut sim);
            (rec, sim, r)
        }

        #[test]
        fn send_and_deliver_records_share_the_event_key() {
            let (rec, _sim, ()) = recorded(|sim| {
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                let b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                sim.run_for(SimDuration::from_secs(1));
            });
            let snap = rec.snapshot();
            let sends: Vec<_> = snap
                .events()
                .filter(|e| matches!(e.kind, TraceKind::Send { .. }))
                .collect();
            // Ping out plus pong back.
            assert_eq!(sends.len(), 2);
            let ping_key = sends[0].key;
            assert_ne!(ping_key, 0);
            assert_eq!(sends[0].parent, 0, "injected via with_ctx");
            let deliver = snap
                .events()
                .find(|e| matches!(e.kind, TraceKind::Deliver { .. }))
                .expect("delivery recorded");
            assert_eq!(deliver.key, ping_key);
            // The pong was sent from inside the ping's delivery handler:
            // causal parent is the ping's delivery event.
            assert_eq!(sends[1].parent, ping_key);
            assert_eq!(snap.span("net.deliver").unwrap().count, 2);
            assert_eq!(snap.span("net.deliver").unwrap().latency.samples().len(), 2);
        }

        #[test]
        fn drop_reasons_distinguish_loss_partition_receiver_down() {
            let (rec, _sim, ()) = recorded(|sim| {
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                let b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                sim.set_partition(b, 5);
                sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                sim.heal_partitions();
                sim.set_loss_rate(1.0);
                sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                sim.set_loss_rate(0.0);
                sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                sim.kill(b);
                sim.run_for(SimDuration::from_secs(1));
            });
            let snap = rec.snapshot();
            assert_eq!(snap.span("net.drop.partition").unwrap().count, 1);
            assert_eq!(snap.span("net.drop.loss").unwrap().count, 1);
            assert_eq!(snap.span("net.drop.receiver_down").unwrap().count, 1);
            let down_drop = snap
                .events()
                .find(|e| {
                    matches!(
                        e.kind,
                        TraceKind::DropDeliver {
                            reason: DropReason::ReceiverDown,
                            ..
                        }
                    )
                })
                .expect("receiver-down drop recorded");
            assert_ne!(down_drop.key, 0, "delivery event existed");
        }

        #[test]
        fn timer_fire_links_back_to_setting_handler() {
            let (rec, _sim, ()) = recorded(|sim| {
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                sim.with_ctx(a, |_, ctx| ctx.set_timer(SimDuration::from_secs(2), 9));
                sim.run_for(SimDuration::from_secs(3));
            });
            let snap = rec.snapshot();
            let set = snap
                .events()
                .find(|e| matches!(e.kind, TraceKind::TimerSet { tag: 9 }))
                .expect("timer set recorded");
            let fire = snap
                .events()
                .find(|e| matches!(e.kind, TraceKind::TimerFire { tag: 9 }))
                .expect("timer fire recorded");
            assert_eq!(fire.key, set.key);
            assert_eq!(snap.span("timer.fire").unwrap().latency.samples(), &[2.0]);
        }

        #[test]
        fn tracing_does_not_perturb_simulation_results() {
            let run = |traced: bool| {
                let mut sim: Simulation<PingPong> = Simulation::new(42);
                if traced {
                    sim.set_trace_sink(Box::new(SharedRecorder::new(64)));
                }
                let mut nodes = Vec::new();
                for _ in 0..8 {
                    let n = sim.add_node(PingPong::default(), DeviceClass::PersonalComputer);
                    sim.enable_churn(n);
                    nodes.push(n);
                }
                for i in 0..8 {
                    let (src, dst) = (nodes[i], nodes[(i + 1) % 8]);
                    sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 100));
                }
                sim.run_for(SimDuration::from_hours(1));
                (
                    sim.metrics().counter("net.delivered"),
                    sim.metrics().counter("net.dropped"),
                    sim.metrics().counter("churn.down"),
                    sim.events_processed(),
                )
            };
            assert_eq!(run(false), run(true));
        }

        #[test]
        fn thread_sink_factory_reaches_internally_constructed_sims() {
            let rec = SharedRecorder::new(64);
            let handle = rec.clone();
            crate::trace::with_thread_sink(
                move || Box::new(handle.clone()),
                || {
                    let mut sim: Simulation<PingPong> = Simulation::new(7);
                    let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                    let b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                    sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                    sim.run_for(SimDuration::from_secs(1));
                },
            );
            let snap = rec.snapshot();
            assert_eq!(snap.span("sim.start").unwrap().count, 1);
            assert!(snap.span("net.deliver").unwrap().count >= 1);
        }
    }

    #[test]
    fn bandwidth_serializes_large_transfers() {
        // A 1 Mbps uplink should take ~8 s to push 1 MB.
        let mut sim: Simulation<PingPong> = Simulation::new(5);
        let a = sim.add_node(PingPong::default(), DeviceClass::PersonalComputer);
        let b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
        sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 1_000_000));
        sim.run_for(SimDuration::from_secs(4));
        assert_eq!(sim.node(b).pings_received, 0, "too early");
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(sim.node(b).pings_received, 1);
    }

    /// The sharded engine's contract: at any shard count, with any worker
    /// mode, the event schedule — and therefore metrics, event counts and
    /// the final clock — is identical to the serial oracle.
    mod shard_identity {
        use super::*;

        /// Everything observable about a finished run, as one comparable
        /// value. The metrics `Display` string covers every counter, gauge
        /// and histogram byte-for-byte.
        fn fingerprint(sim: &Simulation<PingPong>) -> (String, u64, SimTime) {
            (
                format!("{}", sim.metrics()),
                sim.events_processed(),
                sim.now(),
            )
        }

        /// A deliberately hostile workload: mixed device classes, churn,
        /// loss, chaos duplication + reordering, partitions, kill/revive,
        /// loopback sends and microsecond timers (both land *inside* any
        /// lookahead window, exercising the absorbed-overflow path), and a
        /// mid-run latency storm that changes the lookahead between
        /// barriers.
        fn rich_scenario(mut sim: Simulation<PingPong>) -> Simulation<PingPong> {
            let classes = [
                DeviceClass::DatacenterServer,
                DeviceClass::PersonalComputer,
                DeviceClass::Smartphone,
                DeviceClass::Tablet,
            ];
            let nodes: Vec<NodeId> = (0..12)
                .map(|i| sim.add_node(PingPong::default(), classes[i % classes.len()]))
                .collect();
            for &n in &nodes[..6] {
                sim.enable_churn(n);
            }
            sim.enable_chaos(17);
            sim.set_chaos_dup_rate(0.2);
            sim.set_chaos_reorder(SimDuration::from_millis(50));
            sim.set_loss_rate(0.05);
            for round in 0..20 {
                for (i, &src) in nodes.iter().enumerate() {
                    let dst = nodes[(i + 1 + round) % nodes.len()];
                    sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 256));
                }
                sim.with_ctx(nodes[round % nodes.len()], |_, ctx| {
                    let me = ctx.id();
                    ctx.send(me, PpMsg::Pong, 8);
                    ctx.set_timer(SimDuration::from_micros(3), round as u64);
                });
                sim.run_for(SimDuration::from_millis(250));
            }
            sim.set_partition(nodes[0], 1);
            sim.set_partition(nodes[1], 1);
            sim.kill(nodes[2]);
            for _ in 0..5 {
                for (i, &src) in nodes.iter().enumerate() {
                    let dst = nodes[(i + 3) % nodes.len()];
                    sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 512));
                }
                sim.run_for(SimDuration::from_millis(200));
            }
            sim.revive(nodes[2]);
            sim.heal_partitions();
            sim.set_chaos_latency_factor(4.0);
            sim.run_for(SimDuration::from_secs(2));
            sim.set_chaos_latency_factor(0.5);
            sim.run_for(SimDuration::from_secs(1));
            sim.set_chaos_latency_factor(1.0);
            sim.run_for(SimDuration::from_secs(5));
            sim
        }

        fn run_with(shards: u32, workers: ShardWorkers) -> (String, u64, SimTime) {
            let mut sim: Simulation<PingPong> = Simulation::new(4242);
            sim.set_shards_with(shards, workers);
            let sim = rich_scenario(sim);
            fingerprint(&sim)
        }

        #[test]
        fn inline_sharding_matches_serial_oracle_at_many_shard_counts() {
            let serial = run_with(1, ShardWorkers::Inline);
            assert!(
                serial.1 > 500,
                "scenario must be nontrivial (got {} events)",
                serial.1
            );
            for shards in [2, 3, 4, 8] {
                assert_eq!(
                    run_with(shards, ShardWorkers::Inline),
                    serial,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn threaded_sharding_matches_serial_oracle() {
            // Threads forced regardless of host core count, so the barrier
            // protocol itself is exercised even on a 1-core runner.
            let serial = run_with(1, ShardWorkers::Inline);
            for shards in [2, 4, 8] {
                assert_eq!(
                    run_with(shards, ShardWorkers::Threads),
                    serial,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn shard_count_can_change_mid_run_without_changing_the_schedule() {
            let serial = run_with(1, ShardWorkers::Inline);
            // Start serial, shard mid-flight, then de-shard again: pending
            // events are re-routed with their keys unchanged each time.
            let mut sim: Simulation<PingPong> = Simulation::new(4242);
            let nodes: Vec<NodeId> = (0..12)
                .map(|i| {
                    sim.add_node(
                        PingPong::default(),
                        [
                            DeviceClass::DatacenterServer,
                            DeviceClass::PersonalComputer,
                            DeviceClass::Smartphone,
                            DeviceClass::Tablet,
                        ][i % 4],
                    )
                })
                .collect();
            for &n in &nodes[..6] {
                sim.enable_churn(n);
            }
            sim.enable_chaos(17);
            sim.set_chaos_dup_rate(0.2);
            sim.set_chaos_reorder(SimDuration::from_millis(50));
            sim.set_loss_rate(0.05);
            for round in 0..20 {
                // Re-shard repeatedly while events are in flight.
                match round {
                    5 => sim.set_shards_with(4, ShardWorkers::Inline),
                    10 => sim.set_shards(1),
                    15 => sim.set_shards_with(3, ShardWorkers::Inline),
                    _ => {}
                }
                for (i, &src) in nodes.iter().enumerate() {
                    let dst = nodes[(i + 1 + round) % nodes.len()];
                    sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 256));
                }
                sim.with_ctx(nodes[round % nodes.len()], |_, ctx| {
                    let me = ctx.id();
                    ctx.send(me, PpMsg::Pong, 8);
                    ctx.set_timer(SimDuration::from_micros(3), round as u64);
                });
                sim.run_for(SimDuration::from_millis(250));
            }
            sim.set_partition(nodes[0], 1);
            sim.set_partition(nodes[1], 1);
            sim.kill(nodes[2]);
            for _ in 0..5 {
                for (i, &src) in nodes.iter().enumerate() {
                    let dst = nodes[(i + 3) % nodes.len()];
                    sim.with_ctx(src, |_, ctx| ctx.send(dst, PpMsg::Ping, 512));
                }
                sim.run_for(SimDuration::from_millis(200));
            }
            sim.revive(nodes[2]);
            sim.heal_partitions();
            sim.set_chaos_latency_factor(4.0);
            sim.run_for(SimDuration::from_secs(2));
            sim.set_chaos_latency_factor(0.5);
            sim.run_for(SimDuration::from_secs(1));
            sim.set_chaos_latency_factor(1.0);
            sim.run_for(SimDuration::from_secs(5));
            assert_eq!(fingerprint(&sim), serial);
        }

        #[test]
        fn run_idle_drains_identically_in_sharded_mode() {
            let run = |shards: u32| {
                let mut sim: Simulation<PingPong> = Simulation::new(9);
                sim.set_shards_with(shards, ShardWorkers::Inline);
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                let b = sim.add_node(PingPong::default(), DeviceClass::PersonalComputer);
                let c = sim.add_node(PingPong::default(), DeviceClass::Smartphone);
                for _ in 0..10 {
                    sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                    sim.with_ctx(b, |_, ctx| ctx.send(c, PpMsg::Ping, 64));
                }
                sim.run_idle(100_000);
                assert_eq!(sim.pending_events(), 0);
                fingerprint(&sim)
            };
            let serial = run(1);
            assert_eq!(run(2), serial);
            assert_eq!(run(5), serial);
        }

        #[test]
        fn run_idle_guard_still_catches_livelock_when_sharded() {
            struct Storm;
            impl Protocol for Storm {
                type Msg = ();
                fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, from: NodeId, _msg: ()) {
                    ctx.send(from, (), 8);
                }
            }
            let result = std::panic::catch_unwind(|| {
                let mut sim: Simulation<Storm> = Simulation::new(1);
                sim.set_shards_with(2, ShardWorkers::Inline);
                let a = sim.add_node(Storm, DeviceClass::DatacenterServer);
                let b = sim.add_node(Storm, DeviceClass::DatacenterServer);
                sim.with_ctx(a, |_, ctx| ctx.send(b, (), 8));
                sim.run_idle(500);
            });
            assert!(result.is_err(), "guard must fire on an endless echo loop");
        }

        #[test]
        fn loopback_and_zero_delay_timers_flow_through_the_absorbed_path() {
            // Loopback (+1 us) and tiny timers always land inside the open
            // window; identity relies on the overflow heap absorbing them.
            let run = |shards: u32| {
                let mut sim: Simulation<PingPong> = Simulation::new(11);
                sim.set_shards_with(shards, ShardWorkers::Inline);
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                sim.with_ctx(a, |_, ctx| {
                    let me = ctx.id();
                    ctx.send(me, PpMsg::Pong, 8);
                    ctx.set_timer(SimDuration::from_micros(0), 1);
                    ctx.set_timer(SimDuration::from_micros(1), 2);
                });
                sim.run_for(SimDuration::from_secs(1));
                fingerprint(&sim)
            };
            let serial = run(1);
            assert_eq!(run(2), serial);
            assert_eq!(run(4), serial);
            // Sharded mode actually absorbed an in-window event rather than
            // (unsoundly) deferring it past the barrier. Absorption only
            // applies to pushes made while a window is open, so the
            // loopback must originate *inside* a handler: a self-ping's
            // reply (the pong, +1 us loopback) qualifies.
            // (Two nodes, so the lookahead is a real link latency rather
            // than the degenerate 1 us single-node clamp.)
            let mut sim: Simulation<PingPong> = Simulation::new(11);
            sim.set_shards_with(2, ShardWorkers::Inline);
            let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
            let _b = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
            sim.with_ctx(a, |_, ctx| {
                let me = ctx.id();
                ctx.send(me, PpMsg::Ping, 8);
            });
            sim.run_for(SimDuration::from_secs(1));
            assert_eq!(sim.node(a).pongs_received, 1, "self-ping answered");
            assert!(sim.shard_stats().absorbed_events >= 1);
        }

        #[test]
        fn shard_stats_report_windows_and_send_classes() {
            let mut sim: Simulation<PingPong> = Simulation::new(4242);
            sim.set_shards_with(4, ShardWorkers::Inline);
            let sim = rich_scenario(sim);
            let stats = sim.shard_stats();
            assert!(stats.windows > 0, "windowed execution happened");
            assert!(
                stats.cross_events > 0 && stats.local_events > 0,
                "a 12-node all-to-all workload has both local and cross-shard sends: {stats:?}"
            );
            let routed = stats.cross_events + stats.local_events + stats.absorbed_events;
            assert!(
                routed >= sim.events_processed(),
                "every dispatched event was routed: routed={routed} dispatched={}",
                sim.events_processed()
            );
            // Serial mode reports all-zero stats.
            let serial: Simulation<PingPong> = Simulation::new(1);
            assert_eq!(serial.shard_stats().windows, 0);
            assert_eq!(serial.shard_stats().cross_fraction(), 0.0);
        }

        #[test]
        fn with_shards_config_reaches_internally_constructed_sims() {
            // The harness path: `--shards N` must apply inside
            // `fn(seed) -> Metrics` entry points via the thread-local.
            let fp = crate::with_shards(4, || {
                let sim: Simulation<PingPong> = Simulation::new(4242);
                assert_eq!(sim.shards(), 4);
                fingerprint(&rich_scenario(sim))
            });
            assert_eq!(fp, run_with(1, ShardWorkers::Inline));
            // Outside the closure the default is restored.
            let sim: Simulation<PingPong> = Simulation::new(1);
            assert_eq!(sim.shards(), 1);
        }

        #[cfg(feature = "trace")]
        #[test]
        fn trace_records_are_identical_at_any_shard_count() {
            use crate::trace::SharedRecorder;
            let run = |shards: u32| {
                let rec = SharedRecorder::new(4096);
                let mut sim: Simulation<PingPong> = Simulation::new(21);
                sim.set_shards_with(shards, ShardWorkers::Inline);
                sim.set_trace_sink(Box::new(rec.clone()));
                let a = sim.add_node(PingPong::default(), DeviceClass::DatacenterServer);
                let b = sim.add_node(PingPong::default(), DeviceClass::PersonalComputer);
                let c = sim.add_node(PingPong::default(), DeviceClass::Smartphone);
                for _ in 0..10 {
                    sim.with_ctx(a, |_, ctx| ctx.send(b, PpMsg::Ping, 64));
                    sim.with_ctx(c, |_, ctx| ctx.send(a, PpMsg::Ping, 64));
                }
                sim.run_for(SimDuration::from_secs(1));
                let snap = rec.snapshot();
                snap.events()
                    .map(|e| format!("{:?}", e))
                    .collect::<Vec<_>>()
            };
            let serial = run(1);
            assert!(!serial.is_empty());
            assert_eq!(run(2), serial);
            assert_eq!(run(3), serial);
        }
    }
}

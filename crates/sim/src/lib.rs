//! # agora-sim — deterministic discrete-event network simulator
//!
//! The substrate under every system in the `agora` workspace. It provides:
//!
//! * virtual [`time`](crate::time) (microsecond-resolution [`SimTime`] /
//!   [`SimDuration`]),
//! * a seeded, portable [`SimRng`] (xoshiro256\*\*, implemented in-repo so the
//!   stream never changes under us),
//! * [`DeviceClass`] profiles calibrated to the paper's §4 assumptions
//!   (datacenter servers vs PCs vs phones vs tablets),
//! * a [`Network`] model of access links with bandwidth serialization,
//!   heavy-tailed latency jitter, loss and partitions,
//! * the event [`Simulation`] engine itself, driving [`Protocol`]
//!   state machines with messages, timers and churn, and
//! * a [`Metrics`] registry for counters and latency histograms, and
//! * (behind the `trace` cargo feature) the [`trace`](crate::trace)
//!   observability layer: a [`trace::TraceSink`] tap in the engine with a
//!   bounded flight recorder and causal provenance keys. Compiled out by
//!   default — the untraced engine is byte-for-byte the pre-trace engine.
//! * (behind the `probe` cargo feature) the [`probe`](crate::probe) signals
//!   layer: a [`probe::ProbeSink`] tap that samples engine state (queue
//!   depths, link backlogs, counters) on a sim-time cadence and carries
//!   named substrate health signals — the deterministic feed for
//!   `agora-observer`. Compiled out by default, same contract as `trace`.
//!
//! ## Design
//!
//! Protocols are event-driven state machines in the smoltcp idiom — no async
//! runtime, no real I/O, fully deterministic given a seed. A protocol
//! implements [`Protocol`] and reacts to `on_message` / `on_timer` /
//! `on_up` / `on_down` callbacks through a [`Ctx`] handle.
//!
//! ```
//! use agora_sim::{Simulation, Protocol, Ctx, NodeId, DeviceClass, SimDuration};
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Msg = String;
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
//!         if msg == "hello" {
//!             ctx.send(from, "world".to_owned(), 5);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.add_node(Echo, DeviceClass::DatacenterServer);
//! let b = sim.add_node(Echo, DeviceClass::PersonalComputer);
//! sim.with_ctx(b, |_, ctx| ctx.send(a, "hello".to_owned(), 5));
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.metrics().counter("net.delivered"), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod device;
pub mod engine;
pub mod metrics;
pub mod net;
#[cfg(feature = "probe")]
pub mod probe;
pub mod retry;
pub mod rng;
pub mod shard;
pub mod time;
#[cfg(feature = "trace")]
pub mod trace;

pub use chaos::{
    AsymPartition, ChaosController, ChaosFault, ChaosSchedule, ChaosSpec, CrashWaves, LinkFlaps,
    Storm,
};
pub use device::{DeviceClass, DeviceProfile};
pub use engine::{Ctx, NodeId, Protocol, Simulation};
pub use metrics::{CounterHandle, Histogram, Metrics, P2Quantile};
pub use net::Network;
#[cfg(feature = "probe")]
pub use probe::{with_thread_probe, ProbeAnomaly, ProbeFrame, ProbeSink, PROBE_SIM_NODE};
pub use retry::{Jitter, Retrier, RetryPolicy};
pub use rng::{SimRng, ZipfTable};
pub use shard::{
    shard_of, watch_counters as shard_watch_counters, with_shards, ShardStats, ShardWorkers,
};
pub use time::{SimDuration, SimTime};

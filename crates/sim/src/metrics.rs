//! Lightweight metrics collection for simulation runs.
//!
//! Protocols record counters and sample distributions under string keys; the
//! experiment harness reads them out at the end of a run. Everything is plain
//! in-memory state — deterministic and allocation-cheap.

use std::collections::BTreeMap;
use std::fmt;

/// A sampled distribution with enough retained state for mean/percentiles.
///
/// Samples are kept exactly (simulation runs are bounded); percentile queries
/// sort lazily.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Non-finite samples are ignored (they would poison
    /// percentile math).
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.samples.push(v);
            self.sorted = false;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum sample. **On an empty histogram this is the fold identity
    /// `+inf`** — a deliberate sentinel, mirrored by [`Histogram::max`]
    /// returning `-inf`, so `min <= x <= max` filters are vacuously true.
    /// Serialization paths must not emit the sentinel (JSON has no
    /// infinities); use [`Histogram::try_min`] there.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample (`-inf` when empty; see [`Histogram::min`] for the
    /// sentinel rationale). Use [`Histogram::try_max`] when a finite-only
    /// answer is needed.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample, or `None` when empty — the form serialization and
    /// report code should use so infinite sentinels never leak into
    /// artifacts.
    pub fn try_min(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.min())
        }
    }

    /// Maximum sample, or `None` when empty (see [`Histogram::try_min`]).
    pub fn try_max(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.max())
        }
    }

    /// Standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Percentile in `[0, 100]` via nearest-rank. Returns 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    /// Median (nearest-rank p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merge another histogram into this one by appending its samples in
    /// recording order. Because `Histogram` retains every sample exactly,
    /// the merge is *exact*: count, sum, mean, min/max (including the
    /// empty-side infinity sentinels collapsing correctly — merging an
    /// empty histogram changes nothing, merging *into* an empty one yields
    /// a copy) and every percentile equal what one histogram recording the
    /// concatenated stream would report. This is what lets per-shard metric
    /// accumulators be combined deterministically.
    ///
    /// [`P2Quantile`] deliberately has no counterpart: its five-marker
    /// state is a lossy sketch of one stream, and two sketches cannot be
    /// combined exactly — merge the underlying `Histogram`s (or feed one
    /// stream) where exactness matters.
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(99.0),
            if h.is_empty() { 0.0 } else { h.max() }
        )
    }
}

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985).
///
/// Tracks one quantile in O(1) memory — five markers — so unbounded runs
/// (the harness's trial-duration stream, long-lived simulations) can report
/// percentiles without retaining every sample the way [`Histogram`] does.
/// Estimates converge to within a few percent on smooth distributions.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    /// The tracked quantile in `(0, 1)`.
    q: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Actual marker positions (1-based sample ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    incr: [f64; 5],
    /// Samples observed so far.
    count: usize,
}

impl P2Quantile {
    /// Track the quantile `q` (clamped to `[0.001, 0.999]`).
    pub fn new(q: f64) -> P2Quantile {
        let q = q.clamp(0.001, 0.999);
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            incr: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Convenience constructors for the common percentiles.
    pub fn p50() -> P2Quantile {
        P2Quantile::new(0.5)
    }

    /// P95 sketch.
    pub fn p95() -> P2Quantile {
        P2Quantile::new(0.95)
    }

    /// P99 sketch.
    pub fn p99() -> P2Quantile {
        P2Quantile::new(0.99)
    }

    /// The tracked quantile in `(0, 1)`.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation. Non-finite samples are ignored, mirroring
    /// [`Histogram::record`].
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = v;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite heights"));
            }
            return;
        }
        self.count += 1;

        // Find the marker cell containing v and stretch the extremes.
        let k = if v < self.heights[0] {
            self.heights[0] = v;
            0
        } else if v >= self.heights[4] {
            self.heights[4] = v;
            3
        } else {
            // heights[k] <= v < heights[k + 1]
            (0..4)
                .find(|&i| v < self.heights[i + 1])
                .expect("v is below heights[4]")
        };

        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.incr[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.pos[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i` moving by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (pm, p, pp) = (self.pos[i - 1], self.pos[i], self.pos[i + 1]);
        h + d / (pp - pm)
            * ((p - pm + d) * (hp - h) / (pp - p) + (pp - p - d) * (h - hm) / (p - pm))
    }

    /// Linear fallback when the parabolic estimate would break monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate. Exact while fewer than five samples have been seen
    /// (nearest-rank over the retained values); 0 when empty.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count >= 5 {
            return self.heights[2];
        }
        let mut kept: Vec<f64> = self.heights[..self.count].to_vec();
        kept.sort_by(|a, b| a.partial_cmp(b).expect("finite heights"));
        let rank = (self.q * (kept.len() - 1) as f64).round() as usize;
        kept[rank]
    }
}

/// A pre-resolved counter slot, handed out by [`Metrics::counter_handle`].
///
/// Hot paths (the engine dispatch loop bumps several counters per event)
/// resolve the string key once and then increment through the handle — an
/// array index instead of a `BTreeMap` string lookup per event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Registry of named counters, gauges and histograms for one simulation run.
///
/// Counters are stored as a dense value vector indexed by a `BTreeMap` of
/// names, so handle-based increments are O(1). A counter only becomes
/// *visible* (in [`Metrics::counters`] and therefore in serialized
/// artifacts) once it has actually been incremented — registering a handle
/// alone must not change any artifact bytes.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counter_ix: BTreeMap<String, usize>,
    counter_vals: Vec<u64>,
    counter_touched: Vec<bool>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Resolve (registering if needed) the slot for a counter name. The
    /// counter stays invisible until first incremented.
    pub fn counter_handle(&mut self, key: &str) -> CounterHandle {
        if let Some(&ix) = self.counter_ix.get(key) {
            return CounterHandle(ix);
        }
        let ix = self.counter_vals.len();
        self.counter_ix.insert(key.to_owned(), ix);
        self.counter_vals.push(0);
        self.counter_touched.push(false);
        CounterHandle(ix)
    }

    /// Add `n` to a counter through its pre-resolved handle (hot-path form
    /// of [`Metrics::incr`]).
    #[inline]
    pub fn incr_handle(&mut self, h: CounterHandle, n: u64) {
        self.counter_vals[h.0] += n;
        self.counter_touched[h.0] = true;
    }

    /// Add `n` to a counter, creating it at zero if absent.
    pub fn incr(&mut self, key: &str, n: u64) {
        let h = self.counter_handle(key);
        self.incr_handle(h, n);
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.counter_ix
            .get(key)
            .map(|&ix| self.counter_vals[ix])
            .unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_owned(), v);
    }

    /// Read a gauge (0.0 if never written).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Record a sample into a named histogram.
    pub fn sample(&mut self, key: &str, v: f64) {
        self.histograms.entry(key.to_owned()).or_default().record(v);
    }

    /// Borrow a histogram mutably (created empty if absent) — for percentile
    /// queries, which need to sort.
    pub fn histogram_mut(&mut self, key: &str) -> &mut Histogram {
        self.histograms.entry(key.to_owned()).or_default()
    }

    /// Borrow a histogram if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterate counters in key order. Only counters that have actually been
    /// incremented appear (handle registration alone is invisible).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_ix
            .iter()
            .filter(|(_, &ix)| self.counter_touched[ix])
            .map(|(k, &ix)| (k.as_str(), self.counter_vals[ix]))
    }

    /// Snapshot all touched counters as owned `(key, value)` pairs in key
    /// order — the form probe-frame consumers keep across sampling
    /// boundaries to compute per-interval deltas without borrowing the
    /// registry. Visibility matches [`Metrics::counters`]: registered but
    /// never-incremented counters are absent.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters().map(|(k, v)| (k.to_owned(), v)).collect()
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histogram keys in order.
    pub fn histogram_keys(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Iterate histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merge another metrics set into this one (counters add, histograms
    /// concatenate, gauges overwrite).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.counters() {
            self.incr(k, v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.counters() {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge   {k} = {v:.4}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "hist    {k}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 3);
        m.incr("x", 4);
        assert_eq!(m.counter("x"), 7);
    }

    #[test]
    fn counter_handles_alias_string_keys() {
        let mut m = Metrics::new();
        let h = m.counter_handle("net.sent");
        m.incr_handle(h, 2);
        m.incr("net.sent", 3);
        assert_eq!(m.counter("net.sent"), 5);
        assert_eq!(m.counter_handle("net.sent"), h, "handles are stable");
        let listed: Vec<_> = m.counters().collect();
        assert_eq!(listed, vec![("net.sent", 5)]);
    }

    #[test]
    fn registered_but_untouched_counters_stay_invisible() {
        // The engine pre-registers hot counters; artifacts must not grow
        // zero-valued keys for paths that never fired.
        let mut m = Metrics::new();
        let h = m.counter_handle("net.lost");
        assert_eq!(m.counter("net.lost"), 0);
        assert_eq!(m.counters().count(), 0, "registration alone is invisible");
        assert_eq!(format!("{m}"), "");
        // An explicit zero increment makes it visible, matching the old
        // BTreeMap entry-API semantics of `incr(key, 0)`.
        m.incr_handle(h, 0);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("net.lost", 0)]);
    }

    #[test]
    fn merge_skips_untouched_counters() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        b.counter_handle("phantom");
        b.incr("real", 1);
        a.merge(&b);
        assert_eq!(a.counters().count(), 1);
        assert_eq!(a.counter("real"), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.gauge_set("load", 0.5);
        m.gauge_set("load", 0.9);
        assert_eq!(m.gauge("load"), 0.9);
        assert_eq!(m.gauge("missing"), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert_eq!(h.percentile(100.0), 5.0);
        assert!((h.std_dev() - std::f64::consts::SQRT_2).abs() < 0.001);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn percentile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.percentile(100.0), 5.0);
        h.record(1.0); // must re-sort
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn histogram_single_sample_every_percentile() {
        let mut h = Histogram::new();
        h.record(7.5);
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 7.5, "p={p}");
        }
        assert_eq!(h.median(), 7.5);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn histogram_percentile_clamps_out_of_range() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(-5.0), 1.0);
        assert_eq!(h.percentile(250.0), 3.0);
    }

    #[test]
    fn histogram_clone_preserves_lazy_sort_state() {
        let mut h = Histogram::new();
        h.record(3.0);
        h.record(1.0);
        // Sort via a percentile query, then clone: the clone must answer
        // correctly with no further mutation...
        assert_eq!(h.percentile(0.0), 1.0);
        let mut sorted_clone = h.clone();
        assert_eq!(sorted_clone.percentile(100.0), 3.0);
        // ...and a clone taken *before* sorting must re-sort on demand.
        let mut fresh = Histogram::new();
        fresh.record(9.0);
        fresh.record(2.0);
        let mut unsorted_clone = fresh.clone();
        assert_eq!(unsorted_clone.percentile(0.0), 2.0);
        // Recording into a sorted clone clears the flag again.
        sorted_clone.record(0.5);
        assert_eq!(sorted_clone.percentile(0.0), 0.5);
    }

    #[test]
    fn histogram_min_max_empty_are_infinite_sentinels() {
        let h = Histogram::new();
        assert_eq!(h.min(), f64::INFINITY);
        assert_eq!(h.max(), f64::NEG_INFINITY);
        // The checked forms refuse to surface the sentinels.
        assert_eq!(h.try_min(), None);
        assert_eq!(h.try_max(), None);
    }

    #[test]
    fn histogram_try_min_max_match_min_max_when_nonempty() {
        let mut h = Histogram::new();
        h.record(4.0);
        h.record(-2.0);
        assert_eq!(h.try_min(), Some(-2.0));
        assert_eq!(h.try_max(), Some(4.0));
        assert_eq!(h.try_min(), Some(h.min()));
        assert_eq!(h.try_max(), Some(h.max()));
    }

    #[test]
    fn histogram_single_sample_min_equals_max() {
        let mut h = Histogram::new();
        h.record(7.0);
        assert_eq!(h.try_min(), Some(7.0));
        assert_eq!(h.try_max(), Some(7.0));
        assert_eq!(h.min(), h.max());
    }

    #[test]
    fn histogram_all_non_finite_behaves_as_empty() {
        // Non-finite samples are rejected at `record`, so the sentinel
        // contract can't be spoofed from inside.
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.try_min(), None);
        assert_eq!(h.min(), f64::INFINITY);
    }

    #[test]
    fn p2_empty_and_small_counts_are_exact() {
        let mut sketch = P2Quantile::p50();
        assert_eq!(sketch.value(), 0.0);
        assert_eq!(sketch.count(), 0);
        sketch.record(10.0);
        assert_eq!(sketch.value(), 10.0);
        sketch.record(20.0);
        sketch.record(0.0);
        // Three samples: nearest-rank median of {0, 10, 20}.
        assert_eq!(sketch.value(), 10.0);
    }

    #[test]
    fn p2_ignores_non_finite() {
        let mut sketch = P2Quantile::p50();
        sketch.record(f64::NAN);
        sketch.record(f64::INFINITY);
        assert_eq!(sketch.count(), 0);
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut rng = crate::SimRng::new(71);
        let mut sketch = P2Quantile::p50();
        let mut exact = Histogram::new();
        for _ in 0..50_000 {
            let v = rng.f64();
            sketch.record(v);
            exact.record(v);
        }
        let got = sketch.value();
        let want = exact.percentile(50.0);
        assert!((got - want).abs() < 0.01, "p50 {got} vs exact {want}");
    }

    #[test]
    fn p2_tail_of_exponential_stream() {
        let mut rng = crate::SimRng::new(73);
        let mut sketch = P2Quantile::p99();
        let mut exact = Histogram::new();
        for _ in 0..50_000 {
            let v = rng.exp(2.0);
            sketch.record(v);
            exact.record(v);
        }
        let got = sketch.value();
        let want = exact.percentile(99.0);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.05, "p99 {got} vs exact {want} (rel {rel})");
    }

    #[test]
    fn p2_p95_of_normal_stream() {
        let mut rng = crate::SimRng::new(79);
        let mut sketch = P2Quantile::p95();
        let mut exact = Histogram::new();
        for _ in 0..50_000 {
            let v = rng.normal(100.0, 15.0);
            sketch.record(v);
            exact.record(v);
        }
        let got = sketch.value();
        let want = exact.percentile(95.0);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.02, "p95 {got} vs exact {want} (rel {rel})");
    }

    #[test]
    fn p2_constant_stream_is_exact() {
        let mut sketch = P2Quantile::new(0.9);
        for _ in 0..1000 {
            sketch.record(4.25);
        }
        assert_eq!(sketch.value(), 4.25);
    }

    #[test]
    fn histogram_merge_is_exact() {
        // Merging must equal recording the concatenated stream.
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        let mut oracle = Histogram::new();
        for v in [5.0, 1.0, 3.5] {
            left.record(v);
            oracle.record(v);
        }
        for v in [2.0, 9.0, -1.0, 3.5] {
            right.record(v);
            oracle.record(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), oracle.count());
        assert_eq!(left.sum(), oracle.sum());
        assert_eq!(left.mean(), oracle.mean());
        assert_eq!(left.samples(), oracle.samples(), "recording order kept");
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), oracle.percentile(p), "p={p}");
        }
    }

    #[test]
    fn histogram_merge_empty_sides_and_sentinels() {
        // Empty `other`: a no-op, sentinels untouched.
        let mut h = Histogram::new();
        h.record(4.0);
        h.merge(&Histogram::new());
        assert_eq!(h.count(), 1);
        assert_eq!(h.try_min(), Some(4.0));
        assert_eq!(h.try_max(), Some(4.0));
        // Empty `self`: becomes a copy; the infinity sentinels collapse to
        // the merged-in data rather than poisoning min/max.
        let mut empty = Histogram::new();
        assert_eq!(empty.min(), f64::INFINITY);
        empty.merge(&h);
        assert_eq!(empty.try_min(), Some(4.0));
        assert_eq!(empty.try_max(), Some(4.0));
        assert_eq!(empty.min(), 4.0);
        assert_eq!(empty.max(), 4.0);
        // Empty-into-empty stays empty: `try_*` still refuse to answer.
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert!(a.is_empty());
        assert_eq!(a.try_min(), None);
        assert_eq!(a.try_max(), None);
    }

    #[test]
    fn histogram_merge_resets_lazy_sort() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.percentile(0.0), 5.0); // sorts
        let mut other = Histogram::new();
        other.record(1.0);
        h.merge(&other);
        assert_eq!(h.percentile(0.0), 1.0, "merge must clear sorted flag");
        // Self-merge via a clone doubles the samples exactly.
        let snapshot = h.clone();
        h.merge(&snapshot);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 12.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.sample("h", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.sample("h", 3.0);
        b.gauge_set("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), 7.0);
    }
}

//! Lightweight metrics collection for simulation runs.
//!
//! Protocols record counters and sample distributions under string keys; the
//! experiment harness reads them out at the end of a run. Everything is plain
//! in-memory state — deterministic and allocation-cheap.

use std::collections::BTreeMap;
use std::fmt;

/// A sampled distribution with enough retained state for mean/percentiles.
///
/// Samples are kept exactly (simulation runs are bounded); percentile queries
/// sort lazily.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Non-finite samples are ignored (they would poison
    /// percentile math).
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.samples.push(v);
            self.sorted = false;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum sample (+inf when empty).
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample (-inf when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Percentile in `[0, 100]` via nearest-rank. Returns 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    /// Median (nearest-rank p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(99.0),
            if h.is_empty() { 0.0 } else { h.max() }
        )
    }
}

/// Registry of named counters, gauges and histograms for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to a counter, creating it at zero if absent.
    pub fn incr(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_owned(), v);
    }

    /// Read a gauge (0.0 if never written).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Record a sample into a named histogram.
    pub fn sample(&mut self, key: &str, v: f64) {
        self.histograms.entry(key.to_owned()).or_default().record(v);
    }

    /// Borrow a histogram mutably (created empty if absent) — for percentile
    /// queries, which need to sort.
    pub fn histogram_mut(&mut self, key: &str) -> &mut Histogram {
        self.histograms.entry(key.to_owned()).or_default()
    }

    /// Borrow a histogram if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histogram keys in order.
    pub fn histogram_keys(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merge another metrics set into this one (counters add, histograms
    /// concatenate, gauges overwrite).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &s in h.samples() {
                dst.record(s);
            }
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge   {k} = {v:.4}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "hist    {k}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 3);
        m.incr("x", 4);
        assert_eq!(m.counter("x"), 7);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.gauge_set("load", 0.5);
        m.gauge_set("load", 0.9);
        assert_eq!(m.gauge("load"), 0.9);
        assert_eq!(m.gauge("missing"), 0.0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert_eq!(h.percentile(100.0), 5.0);
        assert!((h.std_dev() - 1.4142).abs() < 0.001);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn percentile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.percentile(100.0), 5.0);
        h.record(1.0); // must re-sort
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.sample("h", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.sample("h", 3.0);
        b.gauge_set("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), 7.0);
    }
}

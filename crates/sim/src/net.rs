//! The network model: per-node access links with latency, bandwidth
//! serialization, jitter, random loss and partitions.
//!
//! Topology is a star-of-access-links abstraction: every node reaches every
//! other through its uplink and the receiver's downlink, with class-dependent
//! propagation latency. This is the right fidelity for the paper's arguments,
//! which are about access-link quality (1 Mbps consumer uplinks vs datacenter
//! pipes), not about core routing.

use crate::device::DeviceProfile;
use crate::engine::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

struct NodeNet {
    profile: DeviceProfile,
    up: bool,
    partition: u32,
    /// Earliest instant the uplink is free to begin a new transmission.
    uplink_free: SimTime,
    /// Earliest instant the downlink is free to complete a new reception.
    downlink_free: SimTime,
    /// `profile.uplink_bps.max(1) as f64`, cached at `add_node` so the
    /// per-send hot path skips the integer clamp + conversion. The cached
    /// value is exactly the one the old code computed inline, so every f64
    /// operation (and therefore every rounded result) is unchanged.
    up_bps_f64: f64,
    /// `profile.downlink_bps.max(1) as f64`, cached likewise.
    down_bps_f64: f64,
    /// `profile.base_latency.secs_f64()`, cached likewise for jitter scaling.
    base_latency_secs: f64,
}

/// Why [`Network::transmit`] refused to deliver a message. Distinguishing
/// the cause costs nothing on the hot path (both arms were already computed)
/// and lets the engine count drops uniformly and the trace layer record the
/// reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendFailure {
    /// Sender and receiver are in different partition groups.
    Partitioned,
    /// Random link loss.
    Lost,
    /// Dropped by the chaos layer: a downed link or a directed
    /// (asymmetric) chaos block between the endpoints' chaos groups.
    ChaosLink,
}

/// Per-message chaos verdict from [`Network::chaos_delivery`]: the possibly
/// reorder-delayed delivery instant, an optional duplicate delivery instant,
/// and whether a reorder delay was actually applied.
pub(crate) struct ChaosDelivery {
    pub(crate) at: SimTime,
    pub(crate) duplicate: Option<SimTime>,
    pub(crate) reordered: bool,
}

/// Fault-injection state layered on top of the base network model. Boxed
/// behind an `Option` in [`Network`] so the disabled case costs one untaken
/// branch on the send path and zero RNG draws. All randomness here comes
/// from a dedicated chaos RNG so enabling chaos never perturbs the main
/// simulation stream's draw sequence.
struct ChaosNet {
    rng: SimRng,
    /// Per-node chaos link state (flapping links), independent of `up`.
    link_up: Vec<bool>,
    /// Per-node chaos group for *directed* blocks (asymmetric partitions).
    group: Vec<u32>,
    /// Directed blocked pairs: `(from_group, to_group)` means messages from
    /// the first group to the second are dropped; the reverse direction is
    /// unaffected unless blocked separately.
    blocked: Vec<(u32, u32)>,
    /// Multiplier on propagation latency (storms); 1.0 = off.
    latency_factor: f64,
    /// Probability a delivered message is duplicated; 0.0 = off.
    dup_rate: f64,
    /// Bound on a uniform extra delivery delay (reordering); ZERO = off.
    reorder: SimDuration,
}

/// Link-layer state for all nodes.
pub struct Network {
    nodes: Vec<NodeNet>,
    loss_rate: f64,
    chaos: Option<Box<ChaosNet>>,
    /// Cached [`Network::min_link_latency`], invalidated when nodes are
    /// added (profiles are otherwise immutable). The sharded engine reads
    /// the lookahead once per synchronization window.
    min_link_cache: Option<SimDuration>,
}

impl Network {
    pub(crate) fn new() -> Network {
        Network {
            nodes: Vec::new(),
            loss_rate: 0.0,
            chaos: None,
            min_link_cache: None,
        }
    }

    /// The smallest nominal propagation latency between any two *distinct*
    /// nodes: each link's base latency is the sum of the two endpoints'
    /// access latencies, so the minimum over all pairs is the sum of the two
    /// smallest per-node base latencies — computed in one O(n) pass rather
    /// than the O(n²) all-pairs scan (which the unit test pins it against).
    /// Zero when fewer than two nodes exist.
    ///
    /// This is the sharded engine's lookahead: no cross-shard send issued at
    /// time `t` can *nominally* arrive before `t + min_link_latency()`.
    /// Latency jitter (a log-normal factor that can dip below 1) and chaos
    /// `latency_factor < 1` can undercut it; the engine absorbs such
    /// arrivals deterministically rather than relying on the bound (see
    /// [`crate::shard`]), and scales the lookahead by the chaos factor when
    /// it shrinks latencies.
    pub fn min_link_latency(&self) -> SimDuration {
        let (mut lo1, mut lo2) = (u64::MAX, u64::MAX);
        for node in &self.nodes {
            let base = node.profile.base_latency.micros();
            if base < lo1 {
                lo2 = lo1;
                lo1 = base;
            } else if base < lo2 {
                lo2 = base;
            }
        }
        if lo2 == u64::MAX {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(lo1 + lo2)
        }
    }

    /// Cached lookahead for the sharded engine: [`Network::min_link_latency`]
    /// scaled down by the chaos `latency_factor` when that factor is below
    /// one (storms that *shrink* latency shrink the safe window with them;
    /// factors above one only ever increase latency, so the base bound
    /// stays valid and the window stays wide).
    pub(crate) fn lookahead(&mut self) -> SimDuration {
        let base = match self.min_link_cache {
            Some(cached) => cached,
            None => {
                let computed = self.min_link_latency();
                self.min_link_cache = Some(computed);
                computed
            }
        };
        match self.chaos.as_deref() {
            Some(c) if c.latency_factor < 1.0 => {
                SimDuration::from_secs_f64(base.secs_f64() * c.latency_factor)
            }
            _ => base,
        }
    }

    pub(crate) fn add_node(&mut self, profile: DeviceProfile) {
        self.min_link_cache = None;
        let up_bps_f64 = profile.uplink_bps.max(1) as f64;
        let down_bps_f64 = profile.downlink_bps.max(1) as f64;
        let base_latency_secs = profile.base_latency.secs_f64();
        self.nodes.push(NodeNet {
            profile,
            up: true,
            partition: 0,
            uplink_free: SimTime::ZERO,
            downlink_free: SimTime::ZERO,
            up_bps_f64,
            down_bps_f64,
            base_latency_secs,
        });
        if let Some(c) = &mut self.chaos {
            c.link_up.push(true);
            c.group.push(0);
        }
    }

    /// Enable the chaos layer with its own RNG stream. Idempotent: calling
    /// again resets fault state but keeps the layer on.
    pub(crate) fn enable_chaos(&mut self, seed: u64) {
        let n = self.nodes.len();
        self.chaos = Some(Box::new(ChaosNet {
            rng: SimRng::new(seed),
            link_up: vec![true; n],
            group: vec![0; n],
            blocked: Vec::new(),
            latency_factor: 1.0,
            dup_rate: 0.0,
            reorder: SimDuration::ZERO,
        }));
    }

    pub(crate) fn chaos_enabled(&self) -> bool {
        self.chaos.is_some()
    }

    fn chaos_mut(&mut self) -> &mut ChaosNet {
        self.chaos
            .as_deref_mut()
            .expect("chaos layer not enabled; call enable_chaos first")
    }

    pub(crate) fn set_chaos_link(&mut self, id: NodeId, up: bool) {
        let i = id.index();
        self.chaos_mut().link_up[i] = up;
    }

    pub(crate) fn set_chaos_group(&mut self, id: NodeId, group: u32) {
        let i = id.index();
        self.chaos_mut().group[i] = group;
    }

    pub(crate) fn chaos_block_directed(&mut self, from_group: u32, to_group: u32) {
        let c = self.chaos_mut();
        if !c.blocked.contains(&(from_group, to_group)) {
            c.blocked.push((from_group, to_group));
        }
    }

    pub(crate) fn chaos_clear_directed(&mut self) {
        self.chaos_mut().blocked.clear();
    }

    pub(crate) fn set_chaos_latency_factor(&mut self, f: f64) {
        self.chaos_mut().latency_factor = f.max(0.0);
    }

    pub(crate) fn set_chaos_dup_rate(&mut self, p: f64) {
        self.chaos_mut().dup_rate = p.clamp(0.0, 1.0);
    }

    pub(crate) fn set_chaos_reorder(&mut self, bound: SimDuration) {
        self.chaos_mut().reorder = bound;
    }

    /// Apply duplication/reordering to a delivery scheduled for `at`. With
    /// chaos disabled (the default) this is a single untaken branch and the
    /// message is delivered exactly once at exactly `at`.
    pub(crate) fn chaos_delivery(&mut self, at: SimTime) -> ChaosDelivery {
        let Some(c) = self.chaos.as_deref_mut() else {
            return ChaosDelivery {
                at,
                duplicate: None,
                reordered: false,
            };
        };
        let mut out = ChaosDelivery {
            at,
            duplicate: None,
            reordered: false,
        };
        if c.reorder > SimDuration::ZERO {
            let extra = SimDuration(c.rng.below(c.reorder.micros() + 1));
            if extra > SimDuration::ZERO {
                out.at = at + extra;
                out.reordered = true;
            }
        }
        if c.dup_rate > 0.0 && c.rng.chance(c.dup_rate) {
            // The duplicate takes its own (bounded) extra delay so the copy
            // does not always trail the original by a fixed offset.
            let lag = SimDuration(c.rng.below(c.reorder.micros().max(1_000) + 1));
            out.duplicate = Some(out.at + lag + SimDuration::from_micros(1));
        }
        out
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Link-saturation summary at `now` for the probe layer: the largest
    /// per-node uplink and downlink backlog — seconds of serialization
    /// already committed beyond `now` — and how many nodes have any at all.
    /// A pure read of the reservation cursors, so the result is a function
    /// of the canonical event order only.
    #[cfg(feature = "probe")]
    pub(crate) fn backlog_stats(&self, now: SimTime) -> (f64, u32, f64, u32) {
        let mut up_max = 0u64;
        let mut up_busy = 0u32;
        let mut down_max = 0u64;
        let mut down_busy = 0u32;
        for node in &self.nodes {
            let up = node.uplink_free.micros().saturating_sub(now.micros());
            if up > 0 {
                up_busy += 1;
                up_max = up_max.max(up);
            }
            let down = node.downlink_free.micros().saturating_sub(now.micros());
            if down > 0 {
                down_busy += 1;
                down_max = down_max.max(down);
            }
        }
        (
            up_max as f64 / 1e6,
            up_busy,
            down_max as f64 / 1e6,
            down_busy,
        )
    }

    pub(crate) fn is_up(&self, id: NodeId) -> bool {
        self.nodes[id.index()].up
    }

    pub(crate) fn set_up(&mut self, id: NodeId, up: bool) {
        self.nodes[id.index()].up = up;
    }

    pub(crate) fn profile(&self, id: NodeId) -> &DeviceProfile {
        &self.nodes[id.index()].profile
    }

    pub(crate) fn set_partition(&mut self, id: NodeId, group: u32) {
        self.nodes[id.index()].partition = group;
    }

    pub(crate) fn heal_partitions(&mut self) {
        for n in &mut self.nodes {
            n.partition = 0;
        }
    }

    pub(crate) fn set_loss_rate(&mut self, p: f64) {
        self.loss_rate = p.clamp(0.0, 1.0);
    }

    /// Compute the delivery instant for a `bytes`-sized message sent now from
    /// `from` to `to`, reserving uplink/downlink serialization slots.
    /// Returns `Err` if the message is dropped (partition or random loss).
    /// Sender-side link state is charged even for lost messages — the bits
    /// were transmitted.
    ///
    /// RNG discipline: the loss draw is short-circuited for partitioned
    /// pairs (`partitioned || rng.chance(..)` exactly as before the reason
    /// split), so the draw sequence — and therefore every downstream
    /// simulation result — is unchanged.
    pub(crate) fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        rng: &mut SimRng,
    ) -> Result<SimTime, SendFailure> {
        let (fi, ti) = (from.index(), to.index());
        let partitioned = self.nodes[fi].partition != self.nodes[ti].partition;

        // Uplink serialization at the sender.
        let tx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.nodes[fi].up_bps_f64);
        let tx_start = self.nodes[fi].uplink_free.max(now);
        let tx_end = tx_start + tx;
        self.nodes[fi].uplink_free = tx_end;

        if partitioned {
            return Err(SendFailure::Partitioned);
        }
        // Chaos link checks: pure lookups, no RNG draws, so the main
        // stream's draw sequence is untouched whether or not they fire.
        if let Some(c) = self.chaos.as_deref() {
            if !c.link_up[fi] || !c.link_up[ti] {
                return Err(SendFailure::ChaosLink);
            }
            let (fg, tg) = (c.group[fi], c.group[ti]);
            if fg != tg && c.blocked.contains(&(fg, tg)) {
                return Err(SendFailure::ChaosLink);
            }
        }
        if rng.chance(self.loss_rate) {
            return Err(SendFailure::Lost);
        }

        // Propagation latency: sum of both endpoints' access latencies, each
        // scaled by a log-normal jitter factor.
        let lat_from = jittered(
            &self.nodes[fi].profile,
            self.nodes[fi].base_latency_secs,
            rng,
        );
        let lat_to = jittered(
            &self.nodes[ti].profile,
            self.nodes[ti].base_latency_secs,
            rng,
        );
        let mut prop = lat_from + lat_to;
        if let Some(c) = self.chaos.as_deref() {
            if c.latency_factor != 1.0 {
                prop = SimDuration::from_secs_f64(prop.secs_f64() * c.latency_factor);
            }
        }

        // Downlink serialization at the receiver.
        let rx = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.nodes[ti].down_bps_f64);
        let arrival_earliest = tx_end + prop;
        let rx_end = self.nodes[ti].downlink_free.max(arrival_earliest) + rx;
        self.nodes[ti].downlink_free = rx_end;

        Ok(rx_end)
    }
}

/// `base_secs` must equal `profile.base_latency.secs_f64()`; callers on the
/// hot path pass the per-node cached copy.
fn jittered(profile: &DeviceProfile, base_secs: f64, rng: &mut SimRng) -> SimDuration {
    if profile.latency_sigma <= 0.0 {
        return profile.base_latency;
    }
    let factor = rng.log_normal(0.0, profile.latency_sigma);
    SimDuration::from_secs_f64(base_secs * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;

    fn net_with(classes: &[DeviceClass]) -> Network {
        let mut net = Network::new();
        for &c in classes {
            net.add_node(c.profile());
        }
        net
    }

    #[test]
    fn datacenter_pair_is_fast() {
        let mut net = net_with(&[DeviceClass::DatacenterServer, DeviceClass::DatacenterServer]);
        let mut rng = SimRng::new(1);
        let at = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1500, &mut rng)
            .expect("delivered");
        // Sub-10ms for a packet between two datacenter nodes.
        assert!(at.micros() < 10_000, "took {at:?}");
    }

    #[test]
    fn consumer_uplink_serializes() {
        let mut net = net_with(&[DeviceClass::PersonalComputer, DeviceClass::DatacenterServer]);
        let mut rng = SimRng::new(2);
        // 1 MB over 1 Mbps = 8 seconds of serialization minimum.
        let at = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, &mut rng)
            .expect("delivered");
        assert!(at.secs_f64() >= 8.0, "took {at:?}");
        assert!(at.secs_f64() < 12.0, "took {at:?}");
    }

    #[test]
    fn back_to_back_sends_queue_behind_each_other() {
        let mut net = net_with(&[DeviceClass::PersonalComputer, DeviceClass::DatacenterServer]);
        let mut rng = SimRng::new(3);
        let first = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 500_000, &mut rng)
            .unwrap();
        let second = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 500_000, &mut rng)
            .unwrap();
        assert!(second > first, "second must queue behind first");
        assert!(second.secs_f64() >= 8.0, "two 4s transmissions serialize");
    }

    #[test]
    fn partition_drops_but_charges_uplink() {
        let mut net = net_with(&[DeviceClass::PersonalComputer, DeviceClass::PersonalComputer]);
        let mut rng = SimRng::new(4);
        net.set_partition(NodeId(1), 9);
        assert_eq!(
            net.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &mut rng),
            Err(SendFailure::Partitioned)
        );
        // Uplink time was consumed: a follow-up send starts after ~1 s.
        net.heal_partitions();
        let at = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 125, &mut rng)
            .unwrap();
        assert!(at.secs_f64() >= 1.0, "uplink should have been busy: {at:?}");
    }

    #[test]
    fn loss_rate_bounds_clamped() {
        let mut net = net_with(&[DeviceClass::DatacenterServer]);
        net.set_loss_rate(7.0);
        assert_eq!(net.loss_rate, 1.0);
        net.set_loss_rate(-2.0);
        assert_eq!(net.loss_rate, 0.0);
    }

    #[test]
    fn jitter_disabled_when_sigma_zero() {
        let mut profile = DeviceClass::DatacenterServer.profile();
        profile.latency_sigma = 0.0;
        let mut rng = SimRng::new(5);
        let d = jittered(&profile, profile.base_latency.secs_f64(), &mut rng);
        assert_eq!(d, profile.base_latency);
    }

    #[test]
    fn jitter_varies_when_sigma_positive() {
        let profile = DeviceClass::Smartphone.profile();
        let mut rng = SimRng::new(6);
        let base = profile.base_latency.secs_f64();
        let a = jittered(&profile, base, &mut rng);
        let b = jittered(&profile, base, &mut rng);
        assert_ne!(a, b);
    }

    /// The O(n) two-smallest derivation must agree with the brute-force
    /// all-pairs scan on every mix of device classes.
    fn brute_force_min_link(net: &Network) -> SimDuration {
        let n = net.len();
        let mut best: Option<u64> = None;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pair = net.nodes[i].profile.base_latency.micros()
                    + net.nodes[j].profile.base_latency.micros();
                best = Some(best.map_or(pair, |b| b.min(pair)));
            }
        }
        SimDuration::from_micros(best.unwrap_or(0))
    }

    #[test]
    fn min_link_latency_matches_brute_force_all_pairs() {
        use DeviceClass::*;
        let mixes: &[&[DeviceClass]] = &[
            &[DatacenterServer, DatacenterServer],
            &[PersonalComputer, DatacenterServer],
            &[Smartphone, Tablet, PersonalComputer, DatacenterServer],
            &[Smartphone, Smartphone, Smartphone],
            &[
                DatacenterServer,
                Smartphone,
                PersonalComputer,
                Tablet,
                DatacenterServer,
                Smartphone,
            ],
        ];
        for classes in mixes {
            let net = net_with(classes);
            assert_eq!(
                net.min_link_latency(),
                brute_force_min_link(&net),
                "mix {classes:?}"
            );
        }
        // Heterogeneous custom profiles, including an order where the two
        // smallest arrive last and out of order.
        let mut net = Network::new();
        for micros in [900u64, 40, 7_000, 12, 55] {
            let mut p = DeviceClass::PersonalComputer.profile();
            p.base_latency = SimDuration::from_micros(micros);
            net.add_node(p);
        }
        assert_eq!(net.min_link_latency(), SimDuration::from_micros(12 + 40));
        assert_eq!(net.min_link_latency(), brute_force_min_link(&net));
    }

    #[test]
    fn min_link_latency_degenerate_and_cache_invalidation() {
        let mut net = Network::new();
        assert_eq!(net.min_link_latency(), SimDuration::ZERO);
        net.add_node(DeviceClass::DatacenterServer.profile());
        assert_eq!(net.min_link_latency(), SimDuration::ZERO, "one node");
        assert_eq!(net.lookahead(), SimDuration::ZERO, "cache primed on empty");
        // Adding a second node must invalidate the cached lookahead.
        net.add_node(DeviceClass::DatacenterServer.profile());
        let expected = net.min_link_latency();
        assert!(expected > SimDuration::ZERO);
        assert_eq!(net.lookahead(), expected);
    }

    #[test]
    fn lookahead_scales_down_with_sub_unit_chaos_latency_factor() {
        let mut net = net_with(&[DeviceClass::DatacenterServer, DeviceClass::DatacenterServer]);
        let base = net.lookahead();
        net.enable_chaos(1);
        assert_eq!(net.lookahead(), base, "factor 1.0 is identity");
        net.set_chaos_latency_factor(10.0);
        assert_eq!(
            net.lookahead(),
            base,
            "storms that only add latency keep the base bound valid"
        );
        net.set_chaos_latency_factor(0.25);
        assert_eq!(
            net.lookahead(),
            SimDuration::from_secs_f64(base.secs_f64() * 0.25),
            "shrinking latencies must shrink the window"
        );
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::device::DeviceClass;

    #[test]
    fn fractional_loss_rate_converges() {
        let mut net = Network::new();
        net.add_node(DeviceClass::DatacenterServer.profile());
        net.add_node(DeviceClass::DatacenterServer.profile());
        net.set_loss_rate(0.25);
        let mut rng = SimRng::new(42);
        let trials = 4000;
        let mut lost = 0;
        for i in 0..trials {
            match net.transmit(SimTime(i * 1_000_000), NodeId(0), NodeId(1), 100, &mut rng) {
                Err(SendFailure::Lost) => lost += 1,
                Err(SendFailure::Partitioned | SendFailure::ChaosLink) => {
                    panic!("no partitions or chaos configured")
                }
                Ok(_) => {}
            }
        }
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn delivery_time_monotone_with_size() {
        let mut net = Network::new();
        net.add_node(DeviceClass::PersonalComputer.profile());
        net.add_node(DeviceClass::DatacenterServer.profile());
        let mut rng = SimRng::new(7);
        let small = net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000, &mut rng)
            .unwrap();
        // Fresh network so link state doesn't accumulate.
        let mut net2 = Network::new();
        net2.add_node(DeviceClass::PersonalComputer.profile());
        net2.add_node(DeviceClass::DatacenterServer.profile());
        let mut rng2 = SimRng::new(7);
        let big = net2
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000, &mut rng2)
            .unwrap();
        assert!(big > small, "bigger payloads must take longer");
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::device::DeviceClass;

    fn pair() -> Network {
        let mut net = Network::new();
        net.add_node(DeviceClass::DatacenterServer.profile());
        net.add_node(DeviceClass::DatacenterServer.profile());
        net
    }

    #[test]
    fn asymmetric_partition_drops_one_direction_only() {
        let mut net = pair();
        net.enable_chaos(99);
        net.set_chaos_group(NodeId(1), 1);
        net.chaos_block_directed(1, 0);
        let mut rng = SimRng::new(1);
        // A(group 0) → B(group 1): delivered.
        assert!(net
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100, &mut rng)
            .is_ok());
        // B(group 1) → A(group 0): dropped, chaos-attributed.
        assert_eq!(
            net.transmit(SimTime::ZERO, NodeId(1), NodeId(0), 100, &mut rng),
            Err(SendFailure::ChaosLink)
        );
        net.chaos_clear_directed();
        assert!(net
            .transmit(SimTime::ZERO, NodeId(1), NodeId(0), 100, &mut rng)
            .is_ok());
    }

    #[test]
    fn downed_chaos_link_drops_both_directions() {
        let mut net = pair();
        net.enable_chaos(99);
        net.set_chaos_link(NodeId(0), false);
        let mut rng = SimRng::new(2);
        assert_eq!(
            net.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100, &mut rng),
            Err(SendFailure::ChaosLink)
        );
        assert_eq!(
            net.transmit(SimTime::ZERO, NodeId(1), NodeId(0), 100, &mut rng),
            Err(SendFailure::ChaosLink)
        );
        net.set_chaos_link(NodeId(0), true);
        assert!(net
            .transmit(SimTime::ZERO, NodeId(1), NodeId(0), 100, &mut rng)
            .is_ok());
    }

    #[test]
    fn latency_factor_scales_propagation() {
        let mut slow = pair();
        slow.enable_chaos(99);
        slow.set_chaos_latency_factor(100.0);
        let mut fast = pair();
        fast.enable_chaos(99);
        let mut rng_a = SimRng::new(3);
        let mut rng_b = SimRng::new(3);
        let a = slow
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100, &mut rng_a)
            .unwrap();
        let b = fast
            .transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100, &mut rng_b)
            .unwrap();
        assert!(a > b, "latency storm must slow delivery: {a:?} vs {b:?}");
    }

    #[test]
    fn duplication_and_reorder_fire_under_chaos() {
        let mut net = pair();
        net.enable_chaos(7);
        net.set_chaos_dup_rate(1.0);
        net.set_chaos_reorder(SimDuration::from_millis(50));
        let base = SimTime(1_000_000);
        let mut dup_seen = false;
        let mut reorder_seen = false;
        for _ in 0..64 {
            let d = net.chaos_delivery(base);
            assert!(d.at >= base, "reorder only delays, never time-travels");
            assert!(d.at <= base + SimDuration::from_millis(50));
            if let Some(dup) = d.duplicate {
                dup_seen = true;
                assert!(dup > d.at, "duplicate trails the original");
            }
            reorder_seen |= d.reordered;
        }
        assert!(dup_seen, "dup_rate=1.0 must duplicate");
        assert!(reorder_seen, "50ms reorder bound must delay at least once");
    }

    #[test]
    fn delivered_exactly_once_is_the_default() {
        // Chaos never enabled: chaos_delivery is the identity and the
        // transmit result stream is byte-identical to a network that has
        // no chaos layer at all (it *is* that network).
        let mut net = pair();
        assert!(!net.chaos_enabled());
        let d = net.chaos_delivery(SimTime(123));
        assert_eq!(d.at, SimTime(123));
        assert!(d.duplicate.is_none());
        assert!(!d.reordered);

        // And an enabled-but-quiescent chaos layer changes nothing either:
        // same seed, same transmit outcomes, delivered exactly once.
        let mut plain = pair();
        let mut quiet = pair();
        quiet.enable_chaos(5);
        let mut rng_a = SimRng::new(11);
        let mut rng_b = SimRng::new(11);
        for i in 0..32u64 {
            let a = plain.transmit(SimTime(i * 500), NodeId(0), NodeId(1), 200, &mut rng_a);
            let b = quiet.transmit(SimTime(i * 500), NodeId(0), NodeId(1), 200, &mut rng_b);
            assert_eq!(a, b);
            if let Ok(at) = b {
                let d = quiet.chaos_delivery(at);
                assert_eq!(d.at, at);
                assert!(d.duplicate.is_none());
            }
        }
    }
}

//! Deterministic signal probes: a sampled, sim-time-cadenced view of engine
//! state for observers (`agora-observer`) and, later, reactive in-sim
//! policies.
//!
//! The contract mirrors [`crate::trace`]: the `probe` feature compiles the
//! layer in, but every tap site reduces to one predictable branch until a
//! sink is actually installed — either directly via
//! [`crate::Simulation::set_probe_sink`] or through the thread-local factory
//! ([`with_thread_probe`]) that reaches simulations constructed deep inside
//! `fn(seed) -> Metrics` experiment entry points. With the feature compiled
//! out, the hooks vanish entirely.
//!
//! Determinism: frames are sampled *at dispatch points* — immediately before
//! the first event whose timestamp reaches the next cadence boundary — and
//! every value in a frame is a pure function of engine state at that point
//! in the canonical event order. The sharded engine dispatches the identical
//! canonical order at any shard count (see [`crate::shard`]), so probe
//! frames, signals and anomaly effects are byte-identical at any thread or
//! shard count.

use std::cell::RefCell;

use crate::engine::NodeId;
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Pseudo-node stamped on signals emitted from outside any protocol handler
/// (market audits, sim-level controllers).
pub const PROBE_SIM_NODE: NodeId = NodeId(u32::MAX);

/// One sampled engine frame: everything an observer may read at a cadence
/// boundary. All fields derive from engine state only — no wall clock, no
/// scheduling artifacts — so frames are reproducible byte-for-byte.
pub struct ProbeFrame<'a> {
    /// Simulated time of the event that triggered the sample.
    pub now: SimTime,
    /// Events dispatched so far.
    pub events: u64,
    /// Undispatched events currently queued (all nodes).
    pub pending: u64,
    /// Deepest per-node pending-event queue.
    pub queue_max_depth: u32,
    /// The node holding that queue.
    pub queue_max_node: NodeId,
    /// Nodes with at least one pending event.
    pub queue_nonzero: u32,
    /// Largest per-node uplink backlog, in seconds of serialized sends
    /// already committed beyond `now`.
    pub uplink_max_backlog_secs: f64,
    /// Nodes whose uplink is busy past `now`.
    pub uplink_busy_nodes: u32,
    /// Largest per-node downlink backlog in seconds.
    pub downlink_max_backlog_secs: f64,
    /// Nodes whose downlink is busy past `now`.
    pub downlink_busy_nodes: u32,
    /// The run's metrics registry (counters snapshot via
    /// [`Metrics::snapshot`] for delta-rate computation).
    pub metrics: &'a Metrics,
}

/// An anomaly verdict returned by a sink's frame handler. The engine turns
/// each into a metrics counter bump under `kind` and — when tracing is also
/// compiled in and enabled — a trace point named `kind`, causally parented
/// to the event whose dispatch triggered the sample (so `--explain
/// anomaly.*` can walk back to the overloading traffic).
pub struct ProbeAnomaly {
    /// Counter / trace-point key; `anomaly.*` by convention.
    pub kind: &'static str,
    /// The signal value that tripped the detector.
    pub value: f64,
}

/// Receiver for probe samples. All methods are called on the dispatch
/// thread in canonical event order.
pub trait ProbeSink {
    /// A simulation started with `seed`. Called once per [`crate::Simulation`].
    fn on_sim_start(&mut self, _seed: u64) {}

    /// A named substrate signal ([`crate::Ctx::probe_signal`] /
    /// [`crate::Simulation::probe_note`]): a lookup latency, a funded-slot
    /// ratio, a seeder count.
    fn on_signal(&mut self, _now: SimTime, _node: NodeId, _name: &'static str, _value: f64) {}

    /// A cadence frame. Returned anomalies are applied by the engine (see
    /// [`ProbeAnomaly`]).
    fn on_frame(&mut self, frame: &ProbeFrame<'_>) -> Vec<ProbeAnomaly>;
}

/// Sink used when the feature is compiled in but nothing is installed.
pub struct NoopProbe;

impl ProbeSink for NoopProbe {
    fn on_frame(&mut self, _frame: &ProbeFrame<'_>) -> Vec<ProbeAnomaly> {
        Vec::new()
    }
}

/// What a probe factory produces: the sink plus the sampling cadence.
pub type ProbeInstall = (Box<dyn ProbeSink>, SimDuration);

type ProbeFactory = Box<dyn Fn() -> ProbeInstall>;

thread_local! {
    static PROBE_FACTORY: RefCell<Option<ProbeFactory>> = const { RefCell::new(None) };
}

/// Run `f` with a probe factory installed for this thread: every
/// [`crate::Simulation::new`] under `f` asks the factory for a fresh sink
/// and cadence. This is how a harness observes simulations built inside
/// experiment entry points without changing their signatures. The previous
/// factory (usually none) is restored on exit, including on panic.
pub fn with_thread_probe<R>(
    factory: impl Fn() -> ProbeInstall + 'static,
    f: impl FnOnce() -> R,
) -> R {
    struct Reset(Option<ProbeFactory>);
    impl Drop for Reset {
        fn drop(&mut self) {
            PROBE_FACTORY.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let prev = PROBE_FACTORY.with(|slot| slot.borrow_mut().replace(Box::new(factory)));
    let _reset = Reset(prev);
    f()
}

/// Consult the thread's probe factory (called by [`crate::Simulation::new`]).
pub(crate) fn make_thread_probe() -> Option<ProbeInstall> {
    PROBE_FACTORY.with(|slot| slot.borrow().as_ref().map(|factory| factory()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_is_scoped_and_restored() {
        assert!(make_thread_probe().is_none());
        with_thread_probe(
            || (Box::new(NoopProbe), SimDuration::from_secs(60)),
            || {
                let (_, cadence) = make_thread_probe().expect("factory installed");
                assert_eq!(cadence, SimDuration::from_secs(60));
            },
        );
        assert!(make_thread_probe().is_none());
    }

    #[test]
    fn factory_restored_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_probe(
                || (Box::new(NoopProbe), SimDuration::from_secs(1)),
                || panic!("boom"),
            )
        });
        assert!(caught.is_err());
        assert!(make_thread_probe().is_none());
    }
}

//! Deterministic retry/backoff policies shared by every protocol crate.
//!
//! A [`RetryPolicy`] describes how a request path reacts to a timeout:
//! how many attempts it may spend, how the backoff between attempts
//! grows, how much jitter is applied, and whether a hedged second
//! request is raced against a slow first one. A [`Retrier`] is the
//! per-operation cursor through that policy.
//!
//! Determinism contract: all jitter is drawn from the [`SimRng`] the
//! caller passes in, and [`RetryPolicy::none`] (the default for every
//! protocol constructor that predates hardening) makes **zero** RNG
//! draws and never changes observable behaviour — retry hardening is
//! dormant unless a policy is explicitly installed.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Counter key: attempts beyond the first (i.e. actual retries) issued.
pub const CTR_RETRY_ATTEMPTS: &str = "retry.attempts";
/// Counter key: operations that exhausted their attempt budget.
pub const CTR_RETRY_GAVE_UP: &str = "retry.gave_up";
/// Counter key: hedged duplicate requests issued.
pub const CTR_HEDGE_SENT: &str = "hedge.sent";
/// Counter key: operations completed by the hedged request, not the primary.
pub const CTR_HEDGE_WON: &str = "hedge.won";

/// Jitter strategy applied on top of the exponential backoff curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Jitter {
    /// No jitter: the pre-jitter curve is used as-is (zero RNG draws).
    None,
    /// AWS-style decorrelated jitter: each delay is uniform in
    /// `[base, min(cap, prev * 3)]`, where `prev` is the previous delay.
    Decorrelated,
}

/// A deterministic retry/backoff policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First backoff delay (and jitter floor).
    pub base: SimDuration,
    /// Multiplier applied per attempt to the pre-jitter curve.
    pub factor: f64,
    /// Upper bound on any single backoff delay.
    pub cap: SimDuration,
    /// Total attempts allowed, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Jitter strategy.
    pub jitter: Jitter,
    /// If set, a read may issue one hedged duplicate request after this
    /// delay if the primary has not answered yet.
    pub hedge_after: Option<SimDuration>,
}

impl RetryPolicy {
    /// The dormant policy: one attempt, no hedging, no RNG draws.
    /// Behaviourally identical to the pre-hardening protocols.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::ZERO,
            factor: 1.0,
            cap: SimDuration::ZERO,
            max_attempts: 1,
            jitter: Jitter::None,
            hedge_after: None,
        }
    }

    /// A sensible hardened default: 4 attempts, 500ms base doubling to a
    /// 10s cap with decorrelated jitter, no hedging.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_millis(500),
            factor: 2.0,
            cap: SimDuration::from_secs(10),
            max_attempts: 4,
            jitter: Jitter::Decorrelated,
            hedge_after: None,
        }
    }

    /// Whether this policy ever retries or hedges.
    pub fn is_active(&self) -> bool {
        self.max_attempts > 1 || self.hedge_after.is_some()
    }

    /// The deterministic pre-jitter backoff for retry number `attempt`
    /// (0-based): `min(cap, base * factor^attempt)`. Monotone
    /// non-decreasing in `attempt` and bounded by `cap` — the surface
    /// pinned by the property tests.
    pub fn backoff_pre_jitter(&self, attempt: u32) -> SimDuration {
        let base = self.base.secs_f64();
        let cap = self.cap.secs_f64();
        let raw = base * self.factor.powi(attempt.min(63) as i32);
        SimDuration::from_secs_f64(raw.min(cap))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Per-operation cursor through a [`RetryPolicy`].
#[derive(Clone, Debug)]
pub struct Retrier {
    policy: RetryPolicy,
    attempt: u32,
    prev_secs: f64,
}

impl Retrier {
    /// Start an operation under `policy`; the first attempt is implicit.
    pub fn new(policy: RetryPolicy) -> Retrier {
        Retrier {
            policy,
            attempt: 0,
            prev_secs: policy.base.secs_f64(),
        }
    }

    /// The policy this retrier follows.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Retries consumed so far (not counting the initial attempt).
    pub fn attempts_used(&self) -> u32 {
        self.attempt
    }

    /// Ask for the next backoff delay. Returns `None` when the attempt
    /// budget is exhausted (the caller should give up and count
    /// [`CTR_RETRY_GAVE_UP`]). The budget check happens **before** any
    /// RNG draw, so a dormant policy never perturbs the caller's RNG
    /// stream.
    pub fn next_backoff(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let pre = self.policy.backoff_pre_jitter(self.attempt);
        self.attempt += 1;
        let delay = match self.policy.jitter {
            Jitter::None => pre,
            Jitter::Decorrelated => {
                let base = self.policy.base.secs_f64();
                let cap = self.policy.cap.secs_f64();
                let hi = (self.prev_secs * 3.0).clamp(base, cap.max(base));
                let lo = base.min(hi);
                let drawn = lo + rng.f64() * (hi - lo);
                self.prev_secs = drawn;
                SimDuration::from_secs_f64(drawn)
            }
        };
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_policy_never_retries_and_never_draws() {
        let mut rng = SimRng::new(7);
        let before = rng.next_u64();
        let mut rng = SimRng::new(7);
        let _ = rng.next_u64();
        let mut r = Retrier::new(RetryPolicy::none());
        assert_eq!(r.next_backoff(&mut rng), None);
        assert_eq!(r.next_backoff(&mut rng), None);
        // RNG untouched by the exhausted retrier.
        let mut fresh = SimRng::new(7);
        assert_eq!(before, fresh.next_u64());
        assert!(!RetryPolicy::none().is_active());
    }

    #[test]
    fn pre_jitter_curve_is_monotone_and_capped() {
        let p = RetryPolicy::standard();
        let mut prev = SimDuration::ZERO;
        for a in 0..20 {
            let d = p.backoff_pre_jitter(a);
            assert!(d >= prev, "backoff regressed at attempt {a}");
            assert!(d <= p.cap);
            prev = d;
        }
        assert_eq!(p.backoff_pre_jitter(19), p.cap);
    }

    #[test]
    fn budget_is_respected() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::standard()
        };
        let mut rng = SimRng::new(1);
        let mut r = Retrier::new(p);
        assert!(r.next_backoff(&mut rng).is_some());
        assert!(r.next_backoff(&mut rng).is_some());
        assert_eq!(r.next_backoff(&mut rng), None);
        assert_eq!(r.attempts_used(), 2);
    }

    #[test]
    fn decorrelated_jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::standard();
        let seq = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut r = Retrier::new(p);
            let mut out = Vec::new();
            while let Some(d) = r.next_backoff(&mut rng) {
                assert!(d >= p.base && d <= p.cap);
                out.push(d.micros());
            }
            out
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The simulator must be fully reproducible: the same seed must produce the
//! same event sequence on every platform. We therefore implement
//! xoshiro256\*\* (Blackman & Vigna) in-repo rather than depending on an
//! external RNG crate whose stream might change between versions.
//!
//! This RNG is **not** cryptographically secure; it is a simulation substrate.

/// xoshiro256\*\* pseudo-random generator with convenience distributions.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64, used to expand a single `u64` seed into xoshiro state and to
/// derive independent child streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream, e.g. one per node, so that adding
    /// randomness consumption in one component does not perturb another.
    pub fn fork(&mut self, stream_tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean (inverse rate).
    /// Returns 0 for non-positive means.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; (1 - f64()) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal: exp of a normal with the given (log-space) parameters.
    /// Useful for heavy-tailed latencies of consumer devices.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto-distributed value with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Poisson-distributed count with the given mean (Knuth's algorithm;
    /// fine for the small means the simulator uses).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
            // Guard against pathological means.
            if k > 10_000_000 {
                return k;
            }
        }
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`, via inverse-CDF
    /// over precomputable weights. O(n) per call is acceptable at the sizes
    /// we use; workloads that need many draws should use [`ZipfTable`].
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        ZipfTable::new(n, s).sample(self)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir when k < n,
    /// everything when k >= n). Returned order is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below_usize(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Random 32-byte array (e.g. for content payloads and salts).
    pub fn bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(8) {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes()[..chunk.len()]);
        }
        out
    }

    /// Random byte vector of the given length.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for chunk in out.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        out
    }
}

/// Precomputed Zipf sampler (cumulative weights), for hot loops.
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build a table over ranks `[0, n)` with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfTable {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|w| w.partial_cmp(&u).expect("non-NaN cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut rng = SimRng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = SimRng::new(11);
        let mean = 3.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.15, "observed {observed}");
        assert_eq!(rng.exp(0.0), 0.0);
        assert_eq!(rng.exp(-1.0), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_mean_close() {
        let mut rng = SimRng::new(17);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(4.0)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - 4.0).abs() < 0.1, "observed {observed}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::new(29);
        let picks = rng.sample_indices(50, 10);
        assert_eq!(picks.len(), 10);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(picks.iter().all(|&i| i < 50));
        // k >= n returns all of [0, n).
        assert_eq!(rng.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let mut rng = SimRng::new(31);
        let table = ZipfTable::new(100, 1.0);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn bytes_lengths() {
        let mut rng = SimRng::new(37);
        assert_eq!(rng.bytes(0).len(), 0);
        assert_eq!(rng.bytes(7).len(), 7);
        assert_eq!(rng.bytes(1024).len(), 1024);
        let b = rng.bytes32();
        assert!(b.iter().any(|&x| x != 0));
    }
}

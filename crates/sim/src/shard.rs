//! Conservatively-synchronized sharded execution for the DES engine.
//!
//! # Model
//!
//! Nodes are partitioned into `S` shards by [`shard_of`] (a pure function of
//! node id and shard count). Each shard owns an *event lane*: a min-heap of
//! `(packed u128 key, slab slot)` pairs — the same packed keys the serial
//! engine uses (`(time_micros << 64) | seq`), so lane order is exactly serial
//! order restricted to one shard. Event *payloads* never leave the dispatch
//! thread: protocol messages routinely hold `Rc`s, so workers only ever see
//! `Copy` key/slot pairs while the payloads sit in per-lane slabs.
//!
//! Execution proceeds in lookahead-bounded windows:
//!
//! 1. **Barrier (parallel).** Pick the earliest pending key `T0` and a window
//!    `[T0, T0 + lookahead)`, where lookahead is the minimum cross-shard link
//!    latency from the network model ([`crate::net::Network::min_link_latency`]).
//!    Every lane — concurrently, on its own worker — integrates the staged
//!    cross-shard sends addressed to it and drains its heap of all events
//!    below the window end into a sorted run.
//! 2. **Commit (serial).** The dispatch thread k-way-merges the `S` runs by
//!    key and executes handlers in strictly ascending key order. Because the
//!    packed keys are globally unique and time-ordered, this order is
//!    *exactly* the serial engine's order; and because every handler, RNG
//!    draw, metric update and sequence-number allocation happens on the one
//!    dispatch thread in that order, every artifact — metrics, traces,
//!    protocol state — is byte-identical to the serial engine by
//!    construction, at any shard count. That is the identity argument: the
//!    parallelism lives entirely in heap maintenance (integrate + drain +
//!    sort), which is order-free bookkeeping, never in effects.
//!
//! Events scheduled *during* a window with a key below the window end
//! (loopback sends, zero-delay timers, jitter- or chaos-shrunk deliveries
//! that undercut the nominal lookahead) cannot wait for the next barrier, so
//! they bypass the lanes and merge directly into the in-flight dispatch order
//! through an overflow heap. Correctness therefore never depends on the
//! lookahead being a true lower bound — a too-large window only grows the
//! absorbed fraction, never reorders anything. The debug assertions guard the
//! real invariant instead: dispatch keys are strictly increasing, and no
//! staged cross-shard delivery is ever integrated at or below a key that has
//! already been dispatched.
//!
//! Shard-execution counters ([`ShardStats`]) are deliberately **not** part of
//! [`crate::metrics::Metrics`]: the metrics artifact must stay byte-identical
//! across shard counts, and window/stall/cross-traffic numbers depend on the
//! shard count by definition. They surface only through wall-clock artifacts
//! (`BENCH_perf.json`), which are never CI-diffed.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::{Event, EventKind, NodeId};

/// Process-wide window/stall tallies for the harness's `--watch` heartbeat:
/// relaxed atomics bumped alongside the per-run [`ShardStats`], cumulative
/// over every sharded run in the process. Wall-clock telemetry only — they
/// feed stderr, never an artifact, so reading them mid-run is harmless.
static WATCH_WINDOWS: AtomicU64 = AtomicU64::new(0);
static WATCH_STALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(windows, barrier_stalls)` across all sharded runs in this
/// process so far. Deltas between two reads give live progress.
pub fn watch_counters() -> (u64, u64) {
    (
        WATCH_WINDOWS.load(Ordering::Relaxed),
        WATCH_STALLS.load(Ordering::Relaxed),
    )
}

/// What a worker sees of one pending event: its packed key and the slot of
/// its payload in the destination lane's slab.
pub(crate) type Pair = (u128, u32);

type LaneHeap = BinaryHeap<Reverse<Pair>>;

/// Shard assignment: a pure function of the node id and the shard count —
/// no engine state, no RNG, no allocation order. `shards` must be nonzero.
pub fn shard_of(node: NodeId, shards: u32) -> u32 {
    debug_assert!(shards > 0, "shard count must be nonzero");
    node.0 % shards
}

/// How lane maintenance is executed inside a window barrier.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShardWorkers {
    /// One OS thread per lane when more than one core is available,
    /// dispatch-thread execution otherwise.
    #[default]
    Auto,
    /// Run every lane's window on the dispatch thread (no threads spawned).
    /// The work performed is identical to the threaded path, so results are
    /// too — this is the right mode on single-core hosts.
    Inline,
    /// Always one OS thread per lane (scoped threads, spawned per `run_*`
    /// call). Used by tests to exercise the threaded path regardless of the
    /// host's core count.
    Threads,
}

/// Counters describing sharded execution (windows, stalls, traffic mix).
/// Kept outside [`crate::metrics::Metrics`] so the metrics artifact stays
/// byte-identical across shard counts; report these through
/// `BENCH_perf.json`-style wall-clock artifacts only.
#[derive(Clone, Copy, Default, Debug)]
pub struct ShardStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Lane-windows that produced an empty run: the lane had no event due
    /// before the barrier. High stall fractions mean shards are idling.
    pub barrier_stalls: u64,
    /// Events routed between different shards (staged through a
    /// `(src, dst)` queue and integrated at a barrier).
    pub cross_events: u64,
    /// Events routed within a single shard.
    pub local_events: u64,
    /// Events scheduled inside the window being dispatched (loopback,
    /// zero-delay timers, deliveries that undercut the lookahead). They
    /// merge directly into the dispatch order — deterministically — but
    /// measure how often the lookahead bound was bypassed.
    pub absorbed_events: u64,
}

impl ShardStats {
    /// Fraction of lane-routed events that crossed a shard boundary.
    pub fn cross_fraction(&self) -> f64 {
        let total = self.cross_events + self.local_events;
        if total == 0 {
            0.0
        } else {
            self.cross_events as f64 / total as f64
        }
    }
}

/// Payload storage for one lane. Slots are reused LIFO; reuse order is
/// driven only by the (deterministic) dispatch order, and slot numbers are
/// never compared for event ordering (keys are globally unique), so slab
/// layout cannot influence the schedule.
struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    fn new() -> Slab<T> {
        Slab {
            items: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, v: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.items[slot as usize].is_none());
                self.items[slot as usize] = Some(v);
                slot
            }
            None => {
                let slot = u32::try_from(self.items.len()).expect("slab overflow");
                self.items.push(Some(v));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> T {
        let v = self.items[slot as usize].take().expect("empty slab slot");
        self.free.push(slot);
        v
    }
}

/// One lane's work order for a window: integrate `batches` (the staged
/// cross-shard pairs addressed to this lane), then drain everything below
/// `w_end_key` into `scratch` in ascending key order.
pub(crate) struct LaneCmd {
    pub(crate) w_end_key: u128,
    /// Highest key already dispatched — the assertion floor: nothing staged
    /// may be due at or before it.
    pub(crate) floor: u128,
    pub(crate) batches: Vec<Vec<Pair>>,
    pub(crate) scratch: Vec<Pair>,
}

/// One lane's result: its sorted due-run, its post-drain head key, and the
/// (emptied) batch buffers handed back for reuse.
pub(crate) struct LaneOut {
    pub(crate) lane: usize,
    pub(crate) run: Vec<Pair>,
    pub(crate) head: Option<u128>,
    pub(crate) batches: Vec<Vec<Pair>>,
}

/// The pure per-lane window step, shared verbatim by the inline and threaded
/// drivers — which is what makes the two modes trivially result-identical.
pub(crate) fn lane_window(heap: &mut LaneHeap, lane: usize, cmd: LaneCmd) -> LaneOut {
    let LaneCmd {
        w_end_key,
        floor,
        mut batches,
        mut scratch,
    } = cmd;
    let _ = floor; // used by the debug assertion only
    for batch in &mut batches {
        for &(key, slot) in batch.iter() {
            debug_assert!(
                key > floor,
                "in-flight cross-shard delivery (key {key:#034x}) lands inside an \
                 already-dispatched window (floor {floor:#034x})"
            );
            heap.push(Reverse((key, slot)));
        }
        batch.clear();
    }
    scratch.clear();
    while let Some(&Reverse((key, _))) = heap.peek() {
        if key >= w_end_key {
            break;
        }
        scratch.push(heap.pop().expect("peeked").0);
    }
    LaneOut {
        lane,
        run: scratch,
        head: heap.peek().map(|&Reverse((key, _))| key),
        batches,
    }
}

/// All sharded-mode scheduler state. Owned by [`Scheduler`] when the engine
/// runs with more than one shard; absent (and costing one untaken branch per
/// push) in serial mode.
pub(crate) struct ShardState<M> {
    shards: usize,
    pub(crate) mode: ShardWorkers,
    /// Per-lane pending-event heaps. Owned here between runs; moved into
    /// scoped workers for the duration of a threaded `run_*` call.
    pub(crate) lanes: Vec<LaneHeap>,
    /// Cached post-drain head key per lane (staging between barriers never
    /// touches the lanes, so these stay valid between windows).
    heads: Vec<Option<u128>>,
    /// Per-lane payload slabs, indexed by destination shard.
    slabs: Vec<Slab<EventKind<M>>>,
    /// Staging queues, indexed `src * shards + dst`. Append-only between
    /// barriers; fully integrated at every barrier.
    cross: Vec<Vec<Pair>>,
    /// In-window arrivals (key below the current window end): merged
    /// directly into the dispatch order instead of being staged.
    overflow: BinaryHeap<Event<M>>,
    /// Exclusive key bound of the window being dispatched; 0 between
    /// windows (so external injections always stage).
    window_end_key: u128,
    /// Highest key dispatched so far (strictly increasing).
    floor: u128,
    /// Pending events across lanes, staging and overflow.
    pending: usize,
    /// Per-lane sorted runs for the window being dispatched.
    runs: Vec<Vec<Pair>>,
    cursors: Vec<usize>,
    /// Merge heap over the runs' current heads: `(key, lane)`.
    run_heads: BinaryHeap<Reverse<(u128, u32)>>,
    /// Recycled buffers.
    batch_pool: Vec<Vec<Pair>>,
    scratch_pool: Vec<Vec<Pair>>,
    pub(crate) stats: ShardStats,
}

impl<M> ShardState<M> {
    pub(crate) fn new(shards: usize, mode: ShardWorkers) -> ShardState<M> {
        debug_assert!(shards > 1, "serial mode needs no shard state");
        ShardState {
            shards,
            mode,
            lanes: (0..shards).map(|_| BinaryHeap::new()).collect(),
            heads: vec![None; shards],
            slabs: (0..shards).map(|_| Slab::new()).collect(),
            cross: (0..shards * shards).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            window_end_key: 0,
            floor: 0,
            pending: 0,
            runs: (0..shards).map(|_| Vec::new()).collect(),
            cursors: vec![0; shards],
            run_heads: BinaryHeap::new(),
            batch_pool: Vec::new(),
            scratch_pool: Vec::new(),
            stats: ShardStats::default(),
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Route a freshly-keyed event. In-window arrivals go to the overflow
    /// heap (they are due before the next barrier); everything else is
    /// staged on the `(src, dst)` queue for integration at the next barrier.
    pub(crate) fn route(&mut self, key: u128, kind: EventKind<M>) {
        self.pending += 1;
        if key < self.window_end_key {
            self.stats.absorbed_events += 1;
            self.overflow.push(Event { key, kind });
            return;
        }
        let (src, dst) = route_of(&kind, self.shards as u32);
        if src != dst {
            self.stats.cross_events += 1;
        } else {
            self.stats.local_events += 1;
        }
        let slot = self.slabs[dst as usize].insert(kind);
        self.cross[src as usize * self.shards + dst as usize].push((key, slot));
    }

    /// Earliest pending key, or `None` when idle. Only called between
    /// windows, when the overflow heap is empty and the staged queues hold
    /// exactly the events routed since the last barrier.
    pub(crate) fn next_key(&self) -> Option<u128> {
        debug_assert!(self.overflow.is_empty(), "overflow must drain per window");
        let mut min: Option<u128> = None;
        for head in self.heads.iter().flatten() {
            min = Some(min.map_or(*head, |m| m.min(*head)));
        }
        for queue in &self.cross {
            for &(key, _) in queue {
                min = Some(min.map_or(key, |m| m.min(key)));
            }
        }
        min
    }

    /// Build one window's worth of lane commands, handing each lane its
    /// staged batches and a recycled scratch buffer.
    pub(crate) fn make_cmds(&mut self, w_end_key: u128) -> Vec<LaneCmd> {
        let shards = self.shards;
        (0..shards)
            .map(|dst| LaneCmd {
                w_end_key,
                floor: self.floor,
                batches: (0..shards)
                    .map(|src| {
                        let fresh = self.batch_pool.pop().unwrap_or_default();
                        mem::replace(&mut self.cross[src * shards + dst], fresh)
                    })
                    .collect(),
                scratch: self.scratch_pool.pop().unwrap_or_default(),
            })
            .collect()
    }

    /// Accept the lanes' window results and open the window for dispatch.
    pub(crate) fn begin_window(&mut self, w_end_key: u128, outs: Vec<LaneOut>) {
        debug_assert!(self.run_heads.is_empty());
        self.window_end_key = w_end_key;
        self.stats.windows += 1;
        WATCH_WINDOWS.fetch_add(1, Ordering::Relaxed);
        for out in outs {
            let LaneOut {
                lane,
                run,
                head,
                batches,
            } = out;
            self.heads[lane] = head;
            self.batch_pool.extend(batches);
            if run.is_empty() {
                self.stats.barrier_stalls += 1;
                WATCH_STALLS.fetch_add(1, Ordering::Relaxed);
                self.scratch_pool.push(run);
            } else {
                self.run_heads.push(Reverse((run[0].0, lane as u32)));
                self.cursors[lane] = 0;
                self.runs[lane] = run;
            }
        }
    }

    /// Pop the globally-next event of the open window: the minimum over the
    /// lane runs and the overflow heap. Keys are globally unique, so the
    /// choice — and therefore the whole dispatch order — is deterministic.
    pub(crate) fn next_event(&mut self) -> Option<Event<M>> {
        let run_key = self.run_heads.peek().map(|&Reverse((key, _))| key);
        let ev = match (run_key, self.overflow.peek().map(|e| e.key)) {
            (None, None) => return None,
            (Some(rk), Some(ok)) if ok < rk => self.overflow.pop().expect("peeked"),
            (None, Some(_)) => self.overflow.pop().expect("peeked"),
            (Some(_), _) => {
                let Reverse((key, lane)) = self.run_heads.pop().expect("peeked");
                let lane = lane as usize;
                let cur = self.cursors[lane];
                let (run_key, slot) = self.runs[lane][cur];
                debug_assert_eq!(run_key, key);
                self.cursors[lane] = cur + 1;
                if let Some(&(next, _)) = self.runs[lane].get(cur + 1) {
                    self.run_heads.push(Reverse((next, lane as u32)));
                }
                Event {
                    key,
                    kind: self.slabs[lane].take(slot),
                }
            }
        };
        debug_assert!(self.floor < ev.key, "dispatch keys must strictly increase");
        self.floor = ev.key;
        self.pending -= 1;
        Some(ev)
    }

    /// Close the window: recycle the consumed run buffers and restore the
    /// "between windows" routing regime (everything stages).
    pub(crate) fn end_window(&mut self) {
        debug_assert!(self.run_heads.is_empty() && self.overflow.is_empty());
        self.window_end_key = 0;
        for run in &mut self.runs {
            if !run.is_empty() {
                run.clear();
                self.scratch_pool.push(mem::take(run));
            }
        }
    }

    /// Tear the shard state down into a flat event list (for re-sharding or
    /// returning to serial mode). Keys are preserved, so the schedule is
    /// unaffected by when — or how often — the shard count changes.
    pub(crate) fn drain_all(&mut self) -> Vec<Event<M>> {
        let mut out = Vec::with_capacity(self.pending);
        let shards = self.shards;
        for lane in 0..shards {
            for Reverse((key, slot)) in mem::take(&mut self.lanes[lane]) {
                out.push(Event {
                    key,
                    kind: self.slabs[lane].take(slot),
                });
            }
            self.heads[lane] = None;
        }
        for dst in 0..shards {
            for src in 0..shards {
                for (key, slot) in mem::take(&mut self.cross[src * shards + dst]) {
                    out.push(Event {
                        key,
                        kind: self.slabs[dst].take(slot),
                    });
                }
            }
        }
        out.extend(self.overflow.drain());
        self.pending = 0;
        out
    }
}

/// `(source shard, destination shard)` of an event: deliveries originate at
/// the sender's shard and land at the receiver's; timers and churn
/// transitions are node-local by construction.
fn route_of<M>(kind: &EventKind<M>, shards: u32) -> (u32, u32) {
    match kind {
        EventKind::Deliver { to, from, .. } => (shard_of(*from, shards), shard_of(*to, shards)),
        EventKind::Timer { node, .. } => {
            let s = shard_of(*node, shards);
            (s, s)
        }
        EventKind::ChurnDown(id) | EventKind::ChurnUp(id) => {
            let s = shard_of(*id, shards);
            (s, s)
        }
    }
}

/// The engine's event scheduler: the serial heap in serial mode, the sharded
/// lane machinery otherwise. Sequence numbers are allocated here — globally,
/// in dispatch order — in both modes, which is what keeps packed keys (and
/// therefore schedules) identical across shard counts.
pub(crate) struct Scheduler<M> {
    pub(crate) serial: BinaryHeap<Event<M>>,
    pub(crate) shard: Option<Box<ShardState<M>>>,
    pub(crate) seq: u64,
}

impl<M> Scheduler<M> {
    pub(crate) fn new() -> Scheduler<M> {
        Scheduler {
            serial: BinaryHeap::new(),
            shard: None,
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: crate::time::SimTime, kind: EventKind<M>) -> u128 {
        self.seq += 1;
        let key = Event::<M>::pack(at, self.seq);
        match &mut self.shard {
            None => self.serial.push(Event { key, kind }),
            Some(state) => state.route(key, kind),
        }
        key
    }

    pub(crate) fn len(&self) -> usize {
        match &self.shard {
            None => self.serial.len(),
            Some(state) => state.pending(),
        }
    }
}

thread_local! {
    static SHARD_CONFIG: Cell<(u32, ShardWorkers)> =
        const { Cell::new((1, ShardWorkers::Auto)) };
}

/// Run `f` with every [`crate::Simulation`] constructed on this thread
/// defaulting to `shards` shards ([`ShardWorkers::Auto`]). This is how a
/// harness applies `--shards N` to simulations built deep inside
/// `fn(seed) -> Metrics` experiment entry points without changing their
/// signatures — the same pattern as `trace::with_thread_sink`. The previous
/// configuration is restored on exit (including on unwind).
pub fn with_shards<R>(shards: u32, f: impl FnOnce() -> R) -> R {
    struct Restore((u32, ShardWorkers));
    impl Drop for Restore {
        fn drop(&mut self) {
            SHARD_CONFIG.with(|c| c.set(self.0));
        }
    }
    let prev = SHARD_CONFIG.with(|c| c.replace((shards.max(1), ShardWorkers::Auto)));
    let _restore = Restore(prev);
    f()
}

/// The shard configuration `Simulation::new` should apply on this thread.
pub(crate) fn configured_shards() -> (u32, ShardWorkers) {
    SHARD_CONFIG.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_a_pure_function_of_id_and_count() {
        // Same inputs, same output — across repeated calls, call orders,
        // and interleaved other queries. No hidden state.
        for shards in 1..=16u32 {
            for id in 0..200u32 {
                let first = shard_of(NodeId(id), shards);
                let again = shard_of(NodeId(id), shards);
                assert_eq!(first, again);
                assert!(first < shards, "assignment must be in range");
            }
        }
        // Interleaving queries for other (id, count) pairs changes nothing.
        let probe = shard_of(NodeId(123), 8);
        for id in (0..100).rev() {
            let _ = shard_of(NodeId(id), 3);
        }
        assert_eq!(shard_of(NodeId(123), 8), probe);
    }

    #[test]
    fn shard_of_one_maps_everything_to_shard_zero() {
        for id in 0..64 {
            assert_eq!(shard_of(NodeId(id), 1), 0);
        }
    }

    #[test]
    fn cross_fraction_handles_empty_and_mixed() {
        let mut stats = ShardStats::default();
        assert_eq!(stats.cross_fraction(), 0.0);
        stats.cross_events = 1;
        stats.local_events = 3;
        assert_eq!(stats.cross_fraction(), 0.25);
    }

    #[test]
    fn with_shards_restores_previous_config() {
        assert_eq!(configured_shards().0, 1);
        with_shards(4, || {
            assert_eq!(configured_shards().0, 4);
            with_shards(2, || assert_eq!(configured_shards().0, 2));
            assert_eq!(configured_shards().0, 4);
        });
        assert_eq!(configured_shards().0, 1);
        // Zero is clamped: "no sharding" rather than a degenerate state.
        with_shards(0, || assert_eq!(configured_shards().0, 1));
    }

    #[test]
    fn slab_reuses_slots_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(slab.take(a), "a");
        // Freed slot 0 is reused before the slab grows.
        assert_eq!(slab.insert("c"), 0);
        assert_eq!(slab.take(b), "b");
        assert_eq!(slab.take(0), "c");
    }
}

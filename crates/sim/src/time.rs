//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotonically non-decreasing counter of **microseconds**
//! since the start of the simulation. Microsecond resolution is fine enough to
//! model sub-millisecond datacenter RTTs and coarse enough that a `u64` lasts
//! ~584,000 simulated years, so overflow is not a practical concern.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed duration since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> SimDuration {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> SimDuration {
        SimDuration(h * 3_600 * 1_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> SimDuration {
        SimDuration(d * 86_400 * 1_000_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

/// Scalar multiply (panics on overflow in debug builds, like integer `*`).
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.micros(), 5_000_000);
        assert_eq!((t - SimTime::ZERO).secs_f64(), 5.0);
        // Subtraction saturates rather than underflowing.
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
        assert_eq!(t.since(SimTime(7_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_handles_degenerate_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).millis(), 500);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}

//! `agora-trace` — deterministic tracing and causal provenance for the
//! simulation engine.
//!
//! The engine's aggregate metrics say *what* an experiment measured; this
//! module records *why*. When the `trace` cargo feature is enabled, the
//! engine taps every scheduling decision — sends, deliveries, drops (with
//! reason), timer arms/fires, churn and partition transitions — and hands a
//! [`TraceEvent`] to the installed [`TraceSink`]. Each record carries:
//!
//! * the **subject key**: the packed `u128` event key (`micros << 64 | seq`)
//!   of the queue entry the record describes (`0` for records with no queue
//!   entry, e.g. drops at send time and protocol points), and
//! * the **causal parent**: the packed key of the event whose handler was
//!   running when the record was emitted (`0` for external injections such
//!   as `Simulation::with_ctx`).
//!
//! Walking parent links reconstructs the full causal chain from any metric
//! sample back to the event that originated it — the provenance layer the
//! paper's comparative claims need to be auditable.
//!
//! Costs: with the feature **off**, none of this exists — the tap sites
//! compile to nothing and the engine is bit-for-bit the untraced engine.
//! With the feature **on** but no sink installed (the default
//! [`NoopSink`]), every tap is one predictable `if !on` branch. Tracing
//! never touches the RNG or the metrics registry, so enabling it can never
//! change simulation results; `TRACE_*.jsonl` artifacts are wall-clock-free
//! and byte-identical across repeated runs.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::engine::NodeId;
use crate::metrics::Histogram;
use crate::time::SimTime;

/// Why a message or timer never reached its protocol handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random link loss at transmission time.
    Loss,
    /// Sender and receiver were in different partition groups.
    Partition,
    /// The receiver was down when the message arrived.
    ReceiverDown,
    /// The timer's node was down when the timer fired.
    NodeDown,
    /// Dropped by the chaos fault-injection layer (downed link or
    /// directed/asymmetric chaos block).
    ChaosLink,
}

impl DropReason {
    /// Stable lowercase label (used in trace artifacts and span keys).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Partition => "partition",
            DropReason::ReceiverDown => "receiver_down",
            DropReason::NodeDown => "node_down",
            DropReason::ChaosLink => "chaos_link",
        }
    }
}

/// What a trace record describes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// A `Simulation` was created (delimits runs inside one trial).
    SimStart {
        /// The RNG seed the simulation was built with.
        seed: u64,
    },
    /// A message was enqueued for delivery; the record's key is the future
    /// delivery event's key.
    Send {
        /// Receiver.
        to: NodeId,
        /// Wire size.
        bytes: u64,
    },
    /// A message reached its receiver's handler (key = the delivery event).
    Deliver {
        /// Sender.
        from: NodeId,
    },
    /// A message was dropped at send time (no delivery event exists; key 0).
    DropSend {
        /// Intended receiver.
        to: NodeId,
        /// Wire size (the sender's uplink was still charged).
        bytes: u64,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A message was dropped at delivery time (key = the delivery event).
    DropDeliver {
        /// Sender.
        from: NodeId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A timer was armed; the record's key is the future timer event's key.
    TimerSet {
        /// Protocol tag.
        tag: u64,
    },
    /// A timer fired into its protocol handler (key = the timer event).
    TimerFire {
        /// Protocol tag.
        tag: u64,
    },
    /// A timer fired while its node was down (key = the timer event).
    TimerDrop {
        /// Protocol tag.
        tag: u64,
    },
    /// The node came up (churn, or `Simulation::revive`).
    ChurnUp,
    /// The node went down (churn, or `Simulation::kill`).
    ChurnDown,
    /// The node was assigned to a partition group.
    Partition {
        /// The new group.
        group: u32,
    },
    /// A named protocol trace point ([`crate::Ctx::trace_point`]) — the hook
    /// that ties metric samples to the event that produced them.
    Point {
        /// Stable point name (conventionally the metric key it annotates).
        name: &'static str,
        /// The sample value (hop count, latency, …).
        value: f64,
    },
}

impl TraceKind {
    /// Stable lowercase label for artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::SimStart { .. } => "sim_start",
            TraceKind::Send { .. } => "send",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::DropSend { .. } => "drop_send",
            TraceKind::DropDeliver { .. } => "drop_deliver",
            TraceKind::TimerSet { .. } => "timer_set",
            TraceKind::TimerFire { .. } => "timer_fire",
            TraceKind::TimerDrop { .. } => "timer_drop",
            TraceKind::ChurnUp => "churn_up",
            TraceKind::ChurnDown => "churn_down",
            TraceKind::Partition { .. } => "partition",
            TraceKind::Point { .. } => "point",
        }
    }
}

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Packed event key of the queue entry this record describes
    /// (`micros << 64 | seq`), or `0` when no queue entry exists.
    pub key: u128,
    /// Packed key of the event whose handler emitted this record; `0` for
    /// external injections. For dispatch-side records (`Deliver`,
    /// `TimerFire`, `DropDeliver`, `TimerDrop`) the parent equals `key` —
    /// the record *is* that event; its cause lives on the matching
    /// enqueue-side record (`Send` / `TimerSet`) under the same key.
    pub parent: u128,
    /// Simulated time the record was emitted.
    pub at: SimTime,
    /// The node the record concerns (sender for sends, receiver for
    /// deliveries, `NodeId(u32::MAX)` for `SimStart`).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// Where engine trace records go. Implementations must be deterministic:
/// no wall clock, no global mutable state outside the sink itself.
pub trait TraceSink {
    /// Record one event. Only called while tracing is enabled.
    fn record(&mut self, ev: &TraceEvent);
}

/// The default sink: drops everything. The engine pairs it with a cached
/// `enabled = false` flag, so the untraced hot path pays one predictable
/// branch per tap site and the optimizer erases the call entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Runtime filter: which record classes enter the flight-recorder **ring**.
/// Span aggregation always sees every record — breakdowns stay cheap and
/// complete even when the ring is narrowed to, say, protocol points only.
#[derive(Clone, Copy, Debug)]
pub struct TraceFilter {
    /// Ring-record sends, deliveries and drops.
    pub net: bool,
    /// Ring-record timer arms, fires and drops.
    pub timers: bool,
    /// Ring-record churn and partition transitions.
    pub churn: bool,
    /// Ring-record protocol points.
    pub points: bool,
}

impl Default for TraceFilter {
    fn default() -> TraceFilter {
        TraceFilter {
            net: true,
            timers: true,
            churn: true,
            points: true,
        }
    }
}

impl TraceFilter {
    fn admits(&self, kind: &TraceKind) -> bool {
        match kind {
            TraceKind::SimStart { .. } => true,
            TraceKind::Send { .. }
            | TraceKind::Deliver { .. }
            | TraceKind::DropSend { .. }
            | TraceKind::DropDeliver { .. } => self.net,
            TraceKind::TimerSet { .. }
            | TraceKind::TimerFire { .. }
            | TraceKind::TimerDrop { .. } => self.timers,
            TraceKind::ChurnUp | TraceKind::ChurnDown | TraceKind::Partition { .. } => self.churn,
            TraceKind::Point { .. } => self.points,
        }
    }
}

/// Per-key aggregate over all records of one span (one record class, or one
/// named protocol point). Histograms reuse [`crate::metrics::Histogram`].
#[derive(Clone, Debug, Default)]
pub struct SpanAgg {
    /// Records aggregated.
    pub count: u64,
    /// Total wire bytes (net spans only).
    pub bytes: u64,
    /// Sim-time latency samples in seconds (enqueue → dispatch), where a
    /// matching enqueue record was still tracked.
    pub latency: Histogram,
    /// Point values (hop counts, per-sample latencies, …).
    pub values: Histogram,
}

/// Bounded flight recorder: a ring buffer of full [`TraceEvent`]s (capacity
/// `cap`; the oldest records are evicted first) plus always-on per-span
/// aggregation. Deterministic: iteration orders are arrival order (ring) and
/// key order (spans); the internal in-flight maps are only ever probed by
/// key, never iterated.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: Vec<TraceEvent>,
    /// Next slot to overwrite once `ring.len() == cap`.
    head: usize,
    evicted: u64,
    filter: TraceFilter,
    spans: BTreeMap<String, SpanAgg>,
    /// Delivery-event key → (send time, bytes) for messages in flight.
    msg_sent: HashMap<u128, (SimTime, u64)>,
    /// Timer-event key → arm time for timers in flight.
    timer_set: HashMap<u128, SimTime>,
}

/// Default ring capacity: enough for a full causal window of a mid-size
/// experiment without unbounded memory (~64 B/record → a few MiB).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

impl FlightRecorder {
    /// Recorder with the given ring capacity and the record-everything
    /// filter. Capacity 0 is clamped to 1.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder::with_filter(cap, TraceFilter::default())
    }

    /// Recorder with an explicit ring filter (spans still see everything).
    pub fn with_filter(cap: usize, filter: TraceFilter) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ring: Vec::new(),
            head: 0,
            evicted: 0,
            filter,
            spans: BTreeMap::new(),
            msg_sent: HashMap::new(),
            timer_set: HashMap::new(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted from the ring so far (they still fed the spans).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Ring contents in arrival order (oldest retained record first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.ring.split_at(self.head.min(self.ring.len()));
        head.iter().chain(tail.iter())
    }

    /// Spans in key order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanAgg)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Look up one span.
    pub fn span(&self, key: &str) -> Option<&SpanAgg> {
        self.spans.get(key)
    }

    /// Find the retained **enqueue-side** record (`Send` / `TimerSet`) for a
    /// packed event key — the step function for causal-chain walks. Linear
    /// in the ring; provenance queries are offline.
    pub fn find_enqueue(&self, key: u128) -> Option<&TraceEvent> {
        if key == 0 {
            return None;
        }
        self.events().find(|e| {
            e.key == key && matches!(e.kind, TraceKind::Send { .. } | TraceKind::TimerSet { .. })
        })
    }

    fn span_mut(&mut self, key: &str) -> &mut SpanAgg {
        // Entry-API with String keys only on miss: probe first.
        if !self.spans.contains_key(key) {
            self.spans.insert(key.to_owned(), SpanAgg::default());
        }
        self.spans.get_mut(key).expect("just inserted")
    }

    fn aggregate(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::SimStart { .. } => {
                self.span_mut("sim.start").count += 1;
            }
            TraceKind::Send { bytes, .. } => {
                self.msg_sent.insert(ev.key, (ev.at, bytes));
                let s = self.span_mut("net.send");
                s.count += 1;
                s.bytes += bytes;
            }
            TraceKind::Deliver { .. } => {
                let sent = self.msg_sent.remove(&ev.key);
                let s = self.span_mut("net.deliver");
                s.count += 1;
                if let Some((at, bytes)) = sent {
                    s.bytes += bytes;
                    s.latency.record(ev.at.since(at).secs_f64());
                }
            }
            TraceKind::DropSend { bytes, reason, .. } => {
                let s = self.span_mut(&format!("net.drop.{}", reason.label()));
                s.count += 1;
                s.bytes += bytes;
            }
            TraceKind::DropDeliver { reason, .. } => {
                let sent = self.msg_sent.remove(&ev.key);
                let s = self.span_mut(&format!("net.drop.{}", reason.label()));
                s.count += 1;
                if let Some((_, bytes)) = sent {
                    s.bytes += bytes;
                }
            }
            TraceKind::TimerSet { .. } => {
                self.timer_set.insert(ev.key, ev.at);
                self.span_mut("timer.set").count += 1;
            }
            TraceKind::TimerFire { .. } => {
                let set = self.timer_set.remove(&ev.key);
                let s = self.span_mut("timer.fire");
                s.count += 1;
                if let Some(at) = set {
                    s.latency.record(ev.at.since(at).secs_f64());
                }
            }
            TraceKind::TimerDrop { .. } => {
                self.timer_set.remove(&ev.key);
                self.span_mut("timer.drop").count += 1;
            }
            TraceKind::ChurnUp => self.span_mut("churn.up").count += 1,
            TraceKind::ChurnDown => self.span_mut("churn.down").count += 1,
            TraceKind::Partition { .. } => self.span_mut("net.partition").count += 1,
            TraceKind::Point { name, value } => {
                let s = self.span_mut(name);
                s.count += 1;
                s.values.record(value);
            }
        }
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        self.aggregate(ev);
        if !self.filter.admits(&ev.kind) {
            return;
        }
        if self.ring.len() < self.cap {
            self.ring.push(ev.clone());
        } else {
            self.ring[self.head] = ev.clone();
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
            // Surface overflow in the span table so a capped run's artifact
            // says how much of the ring was lost instead of truncating
            // silently (`evicted()` is only reachable from code, not from
            // the serialized trace).
            self.spans
                .entry("trace.ring_evicted".to_owned())
                .or_default()
                .count += 1;
        }
    }
}

/// A [`FlightRecorder`] behind `Rc<RefCell<…>>`, so a harness can keep a
/// handle while one or more `Simulation`s (each given a clone as sink)
/// append to it. Simulations are single-threaded, so `Rc` suffices.
#[derive(Clone, Debug)]
pub struct SharedRecorder(Rc<RefCell<FlightRecorder>>);

impl SharedRecorder {
    /// Shared recorder with the given ring capacity.
    pub fn new(cap: usize) -> SharedRecorder {
        SharedRecorder::from_recorder(FlightRecorder::new(cap))
    }

    /// Wrap an explicitly configured recorder.
    pub fn from_recorder(rec: FlightRecorder) -> SharedRecorder {
        SharedRecorder(Rc::new(RefCell::new(rec)))
    }

    /// Clone out the current recorder state.
    pub fn snapshot(&self) -> FlightRecorder {
        self.0.borrow().clone()
    }

    /// Run a closure against the live recorder.
    pub fn with<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl TraceSink for SharedRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().record(ev);
    }
}

/// Factory producing one boxed sink per `Simulation` (see
/// [`with_thread_sink`]).
type SinkFactory = Box<dyn Fn() -> Box<dyn TraceSink>>;

thread_local! {
    /// Pending sink factory: consulted by `Simulation::new` so tracing can
    /// be injected under experiment entry points (`fn(seed) -> Metrics`)
    /// without changing their signatures. Thread-local because every trial
    /// is single-threaded — the factory never leaks across workers.
    static SINK_FACTORY: RefCell<Option<SinkFactory>> = const { RefCell::new(None) };
}

/// Run `f` with every `Simulation` created **on this thread** wired to a
/// sink from `factory` (one fresh sink per simulation — share state via
/// [`SharedRecorder`] clones). The factory is uninstalled when `f` returns
/// or panics.
pub fn with_thread_sink<R>(
    factory: impl Fn() -> Box<dyn TraceSink> + 'static,
    f: impl FnOnce() -> R,
) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            SINK_FACTORY.with(|s| *s.borrow_mut() = None);
        }
    }
    SINK_FACTORY.with(|s| *s.borrow_mut() = Some(Box::new(factory)));
    let _reset = Reset;
    f()
}

/// Build a sink from the thread's installed factory, if any.
pub(crate) fn make_thread_sink() -> Option<Box<dyn TraceSink>> {
    SINK_FACTORY.with(|s| s.borrow().as_ref().map(|f| f()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: u128, parent: u128, at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            key,
            parent,
            at: SimTime(at),
            node: NodeId(0),
            kind,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_arrival_order() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record(&ev(i as u128 + 1, 0, i, TraceKind::ChurnUp));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        let keys: Vec<u128> = rec.events().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 4, 5], "oldest evicted first");
        // Spans saw all five records regardless of eviction.
        assert_eq!(rec.span("churn.up").unwrap().count, 5);
    }

    #[test]
    fn ring_eviction_is_counted_in_the_span_table() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..3u64 {
            rec.record(&ev(i as u128 + 1, 0, i, TraceKind::ChurnUp));
        }
        // Ring exactly full: nothing evicted, nothing surfaced.
        assert!(rec.span("trace.ring_evicted").is_none());
        for i in 3..5u64 {
            rec.record(&ev(i as u128 + 1, 0, i, TraceKind::ChurnUp));
        }
        // Two overflows: the span count matches `evicted()`, so serialized
        // traces carry the overflow tally without a side channel.
        assert_eq!(rec.evicted(), 2);
        assert_eq!(rec.span("trace.ring_evicted").unwrap().count, 2);
    }

    #[test]
    fn deliver_latency_matches_send_to_dispatch_gap() {
        let mut rec = FlightRecorder::new(16);
        rec.record(&ev(
            7,
            0,
            1_000_000,
            TraceKind::Send {
                to: NodeId(1),
                bytes: 100,
            },
        ));
        rec.record(&ev(7, 7, 3_500_000, TraceKind::Deliver { from: NodeId(0) }));
        let s = rec.span("net.deliver").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.latency.samples(), &[2.5]);
    }

    #[test]
    fn drop_spans_key_by_reason() {
        let mut rec = FlightRecorder::new(16);
        rec.record(&ev(
            0,
            0,
            0,
            TraceKind::DropSend {
                to: NodeId(1),
                bytes: 10,
                reason: DropReason::Partition,
            },
        ));
        rec.record(&ev(
            9,
            9,
            0,
            TraceKind::DropDeliver {
                from: NodeId(0),
                reason: DropReason::ReceiverDown,
            },
        ));
        assert_eq!(rec.span("net.drop.partition").unwrap().count, 1);
        assert_eq!(rec.span("net.drop.receiver_down").unwrap().count, 1);
        assert!(rec.span("net.drop.loss").is_none());
    }

    #[test]
    fn point_values_histogram() {
        let mut rec = FlightRecorder::new(4);
        for v in [3.0, 5.0] {
            rec.record(&ev(
                0,
                1,
                0,
                TraceKind::Point {
                    name: "dht.lookup_hops",
                    value: v,
                },
            ));
        }
        let s = rec.span("dht.lookup_hops").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.values.mean(), 4.0);
    }

    #[test]
    fn filter_narrows_ring_but_not_spans() {
        let mut rec = FlightRecorder::with_filter(
            16,
            TraceFilter {
                net: false,
                timers: false,
                churn: false,
                points: true,
            },
        );
        rec.record(&ev(
            1,
            0,
            0,
            TraceKind::Send {
                to: NodeId(1),
                bytes: 8,
            },
        ));
        rec.record(&ev(
            0,
            1,
            0,
            TraceKind::Point {
                name: "p",
                value: 1.0,
            },
        ));
        assert_eq!(rec.len(), 1, "send filtered out of the ring");
        assert_eq!(rec.span("net.send").unwrap().count, 1, "span still fed");
    }

    #[test]
    fn find_enqueue_resolves_send_and_timer_records() {
        let mut rec = FlightRecorder::new(16);
        rec.record(&ev(
            11,
            0,
            0,
            TraceKind::Send {
                to: NodeId(1),
                bytes: 8,
            },
        ));
        rec.record(&ev(12, 11, 1, TraceKind::TimerSet { tag: 9 }));
        rec.record(&ev(11, 11, 2, TraceKind::Deliver { from: NodeId(0) }));
        assert!(matches!(
            rec.find_enqueue(11).unwrap().kind,
            TraceKind::Send { .. }
        ));
        assert_eq!(rec.find_enqueue(12).unwrap().parent, 11);
        assert!(rec.find_enqueue(0).is_none());
        assert!(rec.find_enqueue(999).is_none());
    }

    #[test]
    fn shared_recorder_accumulates_across_clones() {
        let shared = SharedRecorder::new(8);
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(&ev(1, 0, 0, TraceKind::ChurnDown));
        b.record(&ev(2, 0, 1, TraceKind::ChurnUp));
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.span("churn.up").unwrap().count, 1);
    }

    #[test]
    fn thread_sink_factory_installs_and_uninstalls() {
        assert!(make_thread_sink().is_none());
        let shared = SharedRecorder::new(8);
        let for_factory = shared.clone();
        with_thread_sink(
            move || Box::new(for_factory.clone()),
            || {
                let mut sink = make_thread_sink().expect("factory installed");
                sink.record(&ev(1, 0, 0, TraceKind::SimStart { seed: 42 }));
            },
        );
        assert!(make_thread_sink().is_none(), "factory reset on exit");
        assert_eq!(shared.snapshot().span("sim.start").unwrap().count, 1);
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the simulator substrate.

use agora_sim::{DeviceClass, Jitter, Retrier, RetryPolicy, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// RNG streams are deterministic per seed and distinct across seeds.
    #[test]
    fn rng_seed_determinism(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// below(n) is always in range, for any n and any seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// sample_indices returns distinct, in-range indices of the right count.
    #[test]
    fn rng_sample_indices_sound(seed in any::<u64>(), n in 0usize..200, k in 0usize..220) {
        let mut r = SimRng::new(seed);
        let picks = r.sample_indices(n, k);
        prop_assert_eq!(picks.len(), k.min(n));
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len(), "duplicates");
        prop_assert!(picks.iter().all(|&i| i < n));
    }

    /// Time arithmetic: associativity of duration addition and consistency
    /// of since/add.
    #[test]
    fn time_arithmetic(a in 0u64..1u64 << 40, d1 in 0u64..1u64 << 30, d2 in 0u64..1u64 << 30) {
        let t = SimTime(a);
        let x = t + SimDuration(d1) + SimDuration(d2);
        let y = t + (SimDuration(d1) + SimDuration(d2));
        prop_assert_eq!(x, y);
        prop_assert_eq!(x.since(t), SimDuration(d1 + d2));
        prop_assert_eq!(t.since(x), SimDuration::ZERO, "saturating");
    }

    /// Duration unit constructors agree for arbitrary values.
    #[test]
    fn duration_units(s in 0u64..1u64 << 18) {
        prop_assert_eq!(SimDuration::from_secs(s), SimDuration::from_millis(s * 1000));
        prop_assert_eq!(
            SimDuration::from_secs_f64(s as f64),
            SimDuration::from_secs(s)
        );
    }

    /// The pre-jitter backoff curve is monotone non-decreasing and never
    /// exceeds its cap, for arbitrary policies.
    #[test]
    fn retry_backoff_monotone_and_capped(
        base_ms in 1u64..10_000,
        factor in 1.0f64..8.0,
        cap_ms in 1u64..1_000_000,
        attempts in 2u32..64,
    ) {
        let p = RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor,
            cap: SimDuration::from_millis(cap_ms.max(base_ms)),
            max_attempts: attempts,
            jitter: Jitter::None,
            hedge_after: None,
        };
        let mut prev = SimDuration::ZERO;
        for a in 0..attempts {
            let d = p.backoff_pre_jitter(a);
            prop_assert!(d >= prev, "regressed at attempt {}", a);
            prop_assert!(d <= p.cap, "exceeded cap at attempt {}", a);
            prev = d;
        }
    }

    /// Jittered backoff sequences are byte-identical for a fixed seed,
    /// bounded by [base, cap], and exactly exhaust the attempt budget.
    #[test]
    fn retry_jitter_deterministic_per_seed(
        seed in any::<u64>(),
        base_ms in 1u64..5_000,
        attempts in 1u32..16,
    ) {
        let p = RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor: 2.0,
            cap: SimDuration::from_millis(base_ms * 64),
            max_attempts: attempts,
            jitter: Jitter::Decorrelated,
            hedge_after: None,
        };
        let run = || {
            let mut rng = SimRng::new(seed);
            let mut r = Retrier::new(p);
            let mut out = Vec::new();
            while let Some(d) = r.next_backoff(&mut rng) {
                prop_assert!(d >= p.base && d <= p.cap);
                out.push(d.micros());
            }
            prop_assert_eq!(out.len() as u32, attempts - 1, "budget mismatch");
            Ok(out)
        };
        prop_assert_eq!(run()?, run()?);
    }

    /// Exponential samples are non-negative with roughly the right mean.
    #[test]
    fn rng_exp_sane(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let mut r = SimRng::new(seed);
        let n = 3000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.exp(mean);
            prop_assert!(v >= 0.0);
            sum += v;
        }
        let observed = sum / n as f64;
        prop_assert!((observed - mean).abs() < mean * 0.25,
            "mean {mean} observed {observed}");
    }
}

#[test]
fn device_profiles_internally_consistent() {
    for class in DeviceClass::all() {
        let p = class.profile();
        assert!(p.uplink_bps > 0);
        assert!(
            p.downlink_bps >= p.uplink_bps,
            "{class:?}: asymmetric down < up"
        );
        assert!((0.0..=1.0).contains(&p.duty_cycle));
        assert!(p.mean_session.micros() > 0);
        if p.battery_constrained {
            assert_eq!(p.server_equivalent_cores(), 0.0, "{class:?}");
        }
    }
}

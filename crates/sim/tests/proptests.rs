// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the simulator substrate.

use agora_sim::{DeviceClass, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// RNG streams are deterministic per seed and distinct across seeds.
    #[test]
    fn rng_seed_determinism(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// below(n) is always in range, for any n and any seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// sample_indices returns distinct, in-range indices of the right count.
    #[test]
    fn rng_sample_indices_sound(seed in any::<u64>(), n in 0usize..200, k in 0usize..220) {
        let mut r = SimRng::new(seed);
        let picks = r.sample_indices(n, k);
        prop_assert_eq!(picks.len(), k.min(n));
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len(), "duplicates");
        prop_assert!(picks.iter().all(|&i| i < n));
    }

    /// Time arithmetic: associativity of duration addition and consistency
    /// of since/add.
    #[test]
    fn time_arithmetic(a in 0u64..1u64 << 40, d1 in 0u64..1u64 << 30, d2 in 0u64..1u64 << 30) {
        let t = SimTime(a);
        let x = t + SimDuration(d1) + SimDuration(d2);
        let y = t + (SimDuration(d1) + SimDuration(d2));
        prop_assert_eq!(x, y);
        prop_assert_eq!(x.since(t), SimDuration(d1 + d2));
        prop_assert_eq!(t.since(x), SimDuration::ZERO, "saturating");
    }

    /// Duration unit constructors agree for arbitrary values.
    #[test]
    fn duration_units(s in 0u64..1u64 << 18) {
        prop_assert_eq!(SimDuration::from_secs(s), SimDuration::from_millis(s * 1000));
        prop_assert_eq!(
            SimDuration::from_secs_f64(s as f64),
            SimDuration::from_secs(s)
        );
    }

    /// Exponential samples are non-negative with roughly the right mean.
    #[test]
    fn rng_exp_sane(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let mut r = SimRng::new(seed);
        let n = 3000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.exp(mean);
            prop_assert!(v >= 0.0);
            sum += v;
        }
        let observed = sum / n as f64;
        prop_assert!((observed - mean).abs() < mean * 0.25,
            "mean {mean} observed {observed}");
    }
}

#[test]
fn device_profiles_internally_consistent() {
    for class in DeviceClass::all() {
        let p = class.profile();
        assert!(p.uplink_bps > 0);
        assert!(
            p.downlink_bps >= p.uplink_bps,
            "{class:?}: asymmetric down < up"
        );
        assert!((0.0..=1.0).contains(&p.duty_cycle));
        assert!(p.mean_session.micros() > 0);
        if p.battery_constrained {
            assert_eq!(p.server_equivalent_cores(), 0.0, "{class:?}");
        }
    }
}

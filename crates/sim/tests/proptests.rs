// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the simulator substrate.

use agora_sim::{
    Ctx, DeviceClass, Jitter, NodeId, Protocol, Retrier, RetryPolicy, ShardWorkers, SimDuration,
    SimRng, SimTime, Simulation,
};
use proptest::prelude::*;

/// A message-relaying protocol for randomized engine workloads: each hop
/// forwards to the next node in the ring (decrementing a TTL) and acks the
/// sender, so one injected message fans out into a burst of traffic.
#[derive(Clone)]
struct Hop(u32);

struct Relay;

impl Protocol for Relay {
    type Msg = Hop;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Hop>, from: NodeId, msg: Hop) {
        if msg.0 > 0 {
            let n = ctx.node_count() as u32;
            let next = NodeId((ctx.id().0 + 1) % n);
            ctx.send(next, Hop(msg.0 - 1), 64);
            ctx.send(from, Hop(0), 32);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Hop>, tag: u64) {
        // Timers re-inject a short relay, so churn/chaos interleave with
        // fresh traffic mid-run.
        let n = ctx.node_count() as u32;
        let next = NodeId((ctx.id().0 + tag as u32 % n.max(1)) % n);
        ctx.send(next, Hop(2), 48);
    }
}

/// Build and run one randomized topology/workload; return everything
/// observable (the full metrics artifact string, the dispatched-event count
/// and the final clock).
fn relay_run(
    shards: u32,
    workers: ShardWorkers,
    seed: u64,
    nodes: usize,
    churn_every: usize,
    loss: f64,
    dup: f64,
    reorder_ms: u64,
    rounds: usize,
) -> (String, u64, SimTime) {
    let classes = [
        DeviceClass::DatacenterServer,
        DeviceClass::PersonalComputer,
        DeviceClass::Smartphone,
        DeviceClass::Tablet,
    ];
    let mut sim: Simulation<Relay> = Simulation::new(seed);
    sim.set_shards_with(shards, workers);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| sim.add_node(Relay, classes[i % classes.len()]))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        if churn_every > 0 && i % churn_every == 0 {
            sim.enable_churn(id);
        }
    }
    sim.set_loss_rate(loss);
    if dup > 0.0 || reorder_ms > 0 {
        sim.enable_chaos(seed ^ 0x5eed);
        sim.set_chaos_dup_rate(dup);
        sim.set_chaos_reorder(SimDuration::from_millis(reorder_ms));
    }
    for round in 0..rounds {
        let src = ids[round % ids.len()];
        sim.with_ctx(src, |_, ctx| {
            ctx.send(ids[(round + 1) % ids.len()], Hop(nodes as u32), 128);
            ctx.set_timer(SimDuration::from_millis(7), round as u64);
        });
        sim.run_for(SimDuration::from_millis(400));
    }
    sim.run_for(SimDuration::from_secs(3));
    (
        format!("{}", sim.metrics()),
        sim.events_processed(),
        sim.now(),
    )
}

proptest! {
    /// RNG streams are deterministic per seed and distinct across seeds.
    #[test]
    fn rng_seed_determinism(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(seed);
            (0..32).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// below(n) is always in range, for any n and any seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// sample_indices returns distinct, in-range indices of the right count.
    #[test]
    fn rng_sample_indices_sound(seed in any::<u64>(), n in 0usize..200, k in 0usize..220) {
        let mut r = SimRng::new(seed);
        let picks = r.sample_indices(n, k);
        prop_assert_eq!(picks.len(), k.min(n));
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), picks.len(), "duplicates");
        prop_assert!(picks.iter().all(|&i| i < n));
    }

    /// Time arithmetic: associativity of duration addition and consistency
    /// of since/add.
    #[test]
    fn time_arithmetic(a in 0u64..1u64 << 40, d1 in 0u64..1u64 << 30, d2 in 0u64..1u64 << 30) {
        let t = SimTime(a);
        let x = t + SimDuration(d1) + SimDuration(d2);
        let y = t + (SimDuration(d1) + SimDuration(d2));
        prop_assert_eq!(x, y);
        prop_assert_eq!(x.since(t), SimDuration(d1 + d2));
        prop_assert_eq!(t.since(x), SimDuration::ZERO, "saturating");
    }

    /// Duration unit constructors agree for arbitrary values.
    #[test]
    fn duration_units(s in 0u64..1u64 << 18) {
        prop_assert_eq!(SimDuration::from_secs(s), SimDuration::from_millis(s * 1000));
        prop_assert_eq!(
            SimDuration::from_secs_f64(s as f64),
            SimDuration::from_secs(s)
        );
    }

    /// The pre-jitter backoff curve is monotone non-decreasing and never
    /// exceeds its cap, for arbitrary policies.
    #[test]
    fn retry_backoff_monotone_and_capped(
        base_ms in 1u64..10_000,
        factor in 1.0f64..8.0,
        cap_ms in 1u64..1_000_000,
        attempts in 2u32..64,
    ) {
        let p = RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor,
            cap: SimDuration::from_millis(cap_ms.max(base_ms)),
            max_attempts: attempts,
            jitter: Jitter::None,
            hedge_after: None,
        };
        let mut prev = SimDuration::ZERO;
        for a in 0..attempts {
            let d = p.backoff_pre_jitter(a);
            prop_assert!(d >= prev, "regressed at attempt {}", a);
            prop_assert!(d <= p.cap, "exceeded cap at attempt {}", a);
            prev = d;
        }
    }

    /// Jittered backoff sequences are byte-identical for a fixed seed,
    /// bounded by [base, cap], and exactly exhaust the attempt budget.
    #[test]
    fn retry_jitter_deterministic_per_seed(
        seed in any::<u64>(),
        base_ms in 1u64..5_000,
        attempts in 1u32..16,
    ) {
        let p = RetryPolicy {
            base: SimDuration::from_millis(base_ms),
            factor: 2.0,
            cap: SimDuration::from_millis(base_ms * 64),
            max_attempts: attempts,
            jitter: Jitter::Decorrelated,
            hedge_after: None,
        };
        let run = || {
            let mut rng = SimRng::new(seed);
            let mut r = Retrier::new(p);
            let mut out = Vec::new();
            while let Some(d) = r.next_backoff(&mut rng) {
                prop_assert!(d >= p.base && d <= p.cap);
                out.push(d.micros());
            }
            prop_assert_eq!(out.len() as u32, attempts - 1, "budget mismatch");
            Ok(out)
        };
        prop_assert_eq!(run()?, run()?);
    }

    /// The sharded engine's metric artifacts are byte-identical to the
    /// serial oracle on randomized topologies and workloads, at every
    /// shard count, in both worker modes.
    #[test]
    fn sharded_engine_is_byte_identical_to_serial_oracle(
        seed in any::<u64>(),
        nodes in 2usize..24,
        churn_every in 0usize..5,
        loss in 0.0f64..0.3,
        dup in 0.0f64..0.5,
        reorder_ms in 0u64..80,
        rounds in 1usize..8,
    ) {
        let oracle = relay_run(
            1, ShardWorkers::Inline,
            seed, nodes, churn_every, loss, dup, reorder_ms, rounds,
        );
        for shards in [2u32, 3, 8] {
            let got = relay_run(
                shards, ShardWorkers::Inline,
                seed, nodes, churn_every, loss, dup, reorder_ms, rounds,
            );
            prop_assert_eq!(&got, &oracle, "shards={} (inline)", shards);
        }
        // One threaded config per case keeps runtime bounded while still
        // exercising the barrier protocol under randomized workloads.
        let threaded = relay_run(
            4, ShardWorkers::Threads,
            seed, nodes, churn_every, loss, dup, reorder_ms, rounds,
        );
        prop_assert_eq!(&threaded, &oracle, "shards=4 (threads)");
    }

    /// Shard assignment is a pure function of node id and shard count —
    /// the property the whole routing layer rests on (also pinned by a
    /// unit test in `shard.rs`; this covers the full input space).
    #[test]
    fn shard_assignment_is_pure_and_in_range(node in any::<u32>(), shards in 1u32..512) {
        let a = agora_sim::shard_of(NodeId(node), shards);
        let b = agora_sim::shard_of(NodeId(node), shards);
        prop_assert_eq!(a, b);
        prop_assert!(a < shards);
        // shards=1 degenerates to the serial engine: everything in lane 0.
        prop_assert_eq!(agora_sim::shard_of(NodeId(node), 1), 0);
    }

    /// Exponential samples are non-negative with roughly the right mean.
    #[test]
    fn rng_exp_sane(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let mut r = SimRng::new(seed);
        let n = 3000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.exp(mean);
            prop_assert!(v >= 0.0);
            sum += v;
        }
        let observed = sum / n as f64;
        prop_assert!((observed - mean).abs() < mean * 0.25,
            "mean {mean} observed {observed}");
    }
}

#[test]
fn device_profiles_internally_consistent() {
    for class in DeviceClass::all() {
        let p = class.profile();
        assert!(p.uplink_bps > 0);
        assert!(
            p.downlink_bps >= p.uplink_bps,
            "{class:?}: asymmetric down < up"
        );
        assert!((0.0..=1.0).contains(&p.duty_cycle));
        assert!(p.mean_session.micros() > 0);
        if p.battery_constrained {
            assert_eq!(p.server_equivalent_cores(), 0.0, "{class:?}");
        }
    }
}

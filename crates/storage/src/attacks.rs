//! Provider attack models vs. proof schemes (experiment E5).
//!
//! §3.3: proof-of-replication "allows a node to convince others that they are
//! storing exactly the same number of copies as they have claimed instead of
//! creating multiple identities and storing data just once (Sybil Attacks),
//! of fetching from others (Outsourcing Attacks), or of generating on-demand
//! (Generation Attacks)". This module plays each cheating strategy against
//! each proof scheme and measures detection.

use agora_crypto::{sha256, Hash256};
use agora_sim::{SimDuration, SimRng};

use crate::chunk::Manifest;
use crate::proofs::{
    seal, sealed_commitment, PorepChallenge, PosChallenge, PosResponse, SealParams,
};

/// Cheating strategies from §3.3 (plus the honest baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheatStrategy {
    /// Stores every sealed replica faithfully.
    Honest,
    /// Claims `claimed_replicas` replicas but stores the data once, unsealed,
    /// under multiple identities (the Sybil attack).
    Sybil,
    /// Stores nothing; fetches the unsealed data from another holder when
    /// challenged (the Outsourcing attack).
    Outsource,
    /// Stores nothing; regenerates the (deterministic) data on demand when
    /// challenged (the Generation attack).
    Generation,
}

impl CheatStrategy {
    /// All strategies.
    pub fn all() -> [CheatStrategy; 4] {
        [
            CheatStrategy::Honest,
            CheatStrategy::Sybil,
            CheatStrategy::Outsource,
            CheatStrategy::Generation,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CheatStrategy::Honest => "honest",
            CheatStrategy::Sybil => "sybil (dedupe replicas)",
            CheatStrategy::Outsource => "outsourcing (fetch on demand)",
            CheatStrategy::Generation => "generation (recompute on demand)",
        }
    }
}

/// Timing environment for the challenge game.
#[derive(Clone, Debug)]
pub struct AttackEnv {
    /// Sealing parameters (deadline, throughput).
    pub seal: SealParams,
    /// Time to fetch the unsealed data from a remote holder.
    pub fetch_time: SimDuration,
    /// Time to regenerate the data from its generator.
    pub regen_time: SimDuration,
    /// Honest local read latency.
    pub local_read: SimDuration,
}

impl Default for AttackEnv {
    fn default() -> AttackEnv {
        AttackEnv {
            seal: SealParams::default(),
            fetch_time: SimDuration::from_secs(2),
            regen_time: SimDuration::from_millis(200),
            local_read: SimDuration::from_millis(20),
        }
    }
}

/// Result of playing one strategy against proof-of-replication.
#[derive(Clone, Copy, Debug)]
pub struct AttackResult {
    /// The strategy played.
    pub strategy: CheatStrategy,
    /// Replicas the provider claimed.
    pub claimed_replicas: u32,
    /// Fraction of challenges answered validly and in time.
    pub pass_rate: f64,
    /// Fraction of challenges detected as cheating (1 − pass for non-honest).
    pub detection_rate: f64,
}

/// Play `challenges` random proof-of-replication challenges against a
/// provider running `strategy`, claiming `claimed_replicas` replicas of
/// `data`. Returns the measured pass/detection rates.
///
/// The game is faithful to the mechanism: commitments are real sealed-Merkle
/// roots; the cheater's best response is simulated under the timing
/// environment (sealing on demand, fetching, regenerating), and a response
/// that would land after the deadline — or that opens to the wrong sealed
/// bytes — is a detection.
pub fn play_porep_game(
    strategy: CheatStrategy,
    data: &[u8],
    claimed_replicas: u32,
    challenges: u32,
    env: &AttackEnv,
    rng: &mut SimRng,
) -> AttackResult {
    // Every claimed replica has a published sealed commitment; the verifier
    // challenges a random (replica, sealed-chunk) pair each round.
    let replica_ids: Vec<Hash256> = (0..claimed_replicas)
        .map(|i| sha256(format!("replica-{i}").as_bytes()))
        .collect();
    let sealed: Vec<Vec<u8>> = replica_ids.iter().map(|id| seal(data, id)).collect();
    let commitments: Vec<Manifest> = sealed
        .iter()
        .map(|s| sealed_commitment(s, &env.seal))
        .collect();

    // What the cheater actually keeps on disk:
    // Honest: all sealed replicas. Sybil: only replica 0's sealed bytes.
    // Outsource/Generation: nothing.
    let deadline = env.seal.response_deadline;

    let mut passed = 0u32;
    for _ in 0..challenges {
        let r = rng.below(claimed_replicas as u64) as usize;
        let manifest = &commitments[r];
        let idx = rng.below(manifest.chunk_count() as u64) as u32;
        let nonce = rng.next_u64();
        let challenge = PorepChallenge {
            commitment: manifest.object_id,
            index: idx,
            nonce,
            deadline_micros: deadline.micros(),
        };

        // The provider's response time and the bytes it can open.
        let (elapsed, can_answer) = match strategy {
            CheatStrategy::Honest => (env.local_read, true),
            CheatStrategy::Sybil => {
                if r == 0 {
                    // The one replica it actually sealed and kept.
                    (env.local_read, true)
                } else {
                    // Must seal replica r's bytes from the unsealed copy now.
                    (env.seal.seal_time(data.len()), true)
                }
            }
            CheatStrategy::Outsource => {
                // Fetch unsealed data, then seal for replica r.
                (env.fetch_time + env.seal.seal_time(data.len()), true)
            }
            CheatStrategy::Generation => {
                // Regenerate data, then seal for replica r.
                (env.regen_time + env.seal.seal_time(data.len()), true)
            }
        };

        if !can_answer || elapsed > deadline {
            continue; // late ⇒ detected
        }
        // Build the actual response from the true sealed bytes (the cheater,
        // having paid the time, can produce correct bytes).
        let (_, chunks) = Manifest::build(&sealed[r], env.seal.sealed_chunk_size);
        let resp = PosResponse::build(
            &PosChallenge {
                object: challenge.commitment,
                index: idx,
                nonce,
            },
            manifest,
            chunks[idx as usize].clone(),
        )
        .expect("index in range");
        if crate::proofs::porep_verify(&challenge, &resp, elapsed.micros()) {
            passed += 1;
        }
    }
    let pass_rate = passed as f64 / challenges as f64;
    AttackResult {
        strategy,
        claimed_replicas,
        pass_rate,
        detection_rate: if strategy == CheatStrategy::Honest {
            0.0
        } else {
            1.0 - pass_rate
        },
    }
}

/// Detection probability of an ack-then-discard provider after `n` audits
/// when it kept a `keep_fraction` of shards (proof-of-retrievability /
/// proof-of-storage schemes; experiment E5's second panel).
pub fn discard_detection_probability(keep_fraction: f64, n_audits: u32) -> f64 {
    1.0 - keep_fraction.clamp(0.0, 1.0).powi(n_audits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> AttackEnv {
        // Scale the timing so the test shard (500 KB) takes 10 s to seal
        // against a 1 s deadline — same deadline-to-seal ratio as a
        // production 64 MB sector, at a fraction of the host cost.
        let mut e = AttackEnv::default();
        e.seal.seal_throughput_bps = 50_000;
        e.seal.response_deadline = SimDuration::from_secs(1);
        e
    }

    fn data() -> Vec<u8> {
        vec![0xabu8; 500_000]
    }

    #[test]
    fn honest_provider_always_passes() {
        let mut rng = SimRng::new(1);
        let r = play_porep_game(CheatStrategy::Honest, &data(), 3, 30, &env(), &mut rng);
        assert_eq!(r.pass_rate, 1.0);
        assert_eq!(r.detection_rate, 0.0);
    }

    #[test]
    fn sybil_detected_on_phantom_replicas() {
        let mut rng = SimRng::new(2);
        let r = play_porep_game(CheatStrategy::Sybil, &data(), 3, 300, &env(), &mut rng);
        // Only ~1/3 of challenges hit the one real sealed replica.
        assert!(r.pass_rate < 0.45, "pass {}", r.pass_rate);
        assert!(r.pass_rate > 0.2, "pass {}", r.pass_rate);
        assert!(r.detection_rate > 0.5);
    }

    #[test]
    fn outsourcing_and_generation_always_detected() {
        let mut rng = SimRng::new(3);
        for s in [CheatStrategy::Outsource, CheatStrategy::Generation] {
            let r = play_porep_game(s, &data(), 2, 50, &env(), &mut rng);
            assert_eq!(r.pass_rate, 0.0, "{s:?} should always miss the deadline");
            assert_eq!(r.detection_rate, 1.0);
        }
    }

    #[test]
    fn small_data_weakens_the_deadline_defence() {
        // If sealing is faster than the deadline, generation attacks pass —
        // the scheme's security depends on seal time >> deadline.
        let mut rng = SimRng::new(4);
        let small = vec![1u8; 10_000]; // 0.2 s seal at 50 kB/s, under deadline
        let r = play_porep_game(CheatStrategy::Generation, &small, 2, 50, &env(), &mut rng);
        assert_eq!(r.pass_rate, 1.0);
    }

    #[test]
    fn discard_detection_math() {
        assert_eq!(discard_detection_probability(0.0, 1), 1.0);
        assert_eq!(discard_detection_probability(1.0, 100), 0.0);
        let p = discard_detection_probability(0.9, 20);
        assert!((p - (1.0 - 0.9f64.powi(20))).abs() < 1e-12);
        assert!(p > 0.85);
    }

    #[test]
    fn all_strategies_enumerated() {
        assert_eq!(CheatStrategy::all().len(), 4);
        for s in CheatStrategy::all() {
            assert!(!s.label().is_empty());
        }
    }
}

//! Content-addressed objects: chunking and manifests.
//!
//! An object is split into fixed-size chunks, each addressed by its hash; a
//! [`Manifest`] commits to the chunk list with a Merkle tree (IPFS-style
//! content addressing). Erasure coding operates per object over the
//! concatenated bytes (see [`crate::erasure`]); chunks are the retrieval and
//! challenge granularity.

use agora_crypto::{leaf_hash, sha256, Hash256, MerkleProof, MerkleTree};

/// Default chunk size (64 KiB — small enough for consumer uplinks to move a
/// chunk in ~0.5 s, large enough to keep manifests small).
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// A content-addressed chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// `sha256` of the bytes.
    pub id: Hash256,
    /// The bytes.
    pub data: Vec<u8>,
}

impl Chunk {
    /// Create (and address) a chunk.
    pub fn new(data: Vec<u8>) -> Chunk {
        Chunk {
            id: sha256(&data),
            data,
        }
    }

    /// Verify the bytes match the id.
    pub fn verify(&self) -> bool {
        sha256(&self.data) == self.id
    }
}

/// A manifest: ordered chunk ids plus a Merkle commitment over them.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Object id (= Merkle root over chunk ids).
    pub object_id: Hash256,
    /// Total object length in bytes.
    pub length: u64,
    /// Chunk size used.
    pub chunk_size: u32,
    /// Ordered chunk ids.
    pub chunks: Vec<Hash256>,
    tree: MerkleTree,
}

impl Manifest {
    /// Chunk `data` and build its manifest.
    pub fn build(data: &[u8], chunk_size: usize) -> (Manifest, Vec<Chunk>) {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<Chunk> = if data.is_empty() {
            vec![Chunk::new(Vec::new())]
        } else {
            data.chunks(chunk_size)
                .map(|c| Chunk::new(c.to_vec()))
                .collect()
        };
        let ids: Vec<Hash256> = chunks.iter().map(|c| c.id).collect();
        let tree =
            MerkleTree::from_leaf_hashes(ids.iter().map(|h| leaf_hash(h.as_bytes())).collect());
        (
            Manifest {
                object_id: tree.root(),
                length: data.len() as u64,
                chunk_size: chunk_size as u32,
                chunks: ids,
                tree,
            },
            chunks,
        )
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Prove that chunk `index` belongs to this object.
    pub fn prove_chunk(&self, index: usize) -> Option<MerkleProof> {
        self.tree.prove(index)
    }

    /// Verify a chunk + proof against an object id.
    pub fn verify_chunk(object_id: &Hash256, chunk: &Chunk, index_proof: &MerkleProof) -> bool {
        chunk.verify() && index_proof.verify(leaf_hash(chunk.id.as_bytes()), *object_id)
    }

    /// Reassemble the object from its chunks (must be complete and ordered
    /// by the manifest). `None` on any mismatch.
    pub fn assemble(&self, chunks: &[Chunk]) -> Option<Vec<u8>> {
        if chunks.len() != self.chunks.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.length as usize);
        for (want, chunk) in self.chunks.iter().zip(chunks) {
            if &chunk.id != want || !chunk.verify() {
                return None;
            }
            out.extend_from_slice(&chunk.data);
        }
        if out.len() as u64 != self.length {
            return None;
        }
        Some(out)
    }

    /// Wire size of the manifest itself.
    pub fn wire_size(&self) -> u64 {
        32 + 8 + 4 + self.chunks.len() as u64 * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_round_trip() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let (manifest, chunks) = Manifest::build(&data, DEFAULT_CHUNK_SIZE);
        assert_eq!(manifest.chunk_count(), 4); // ceil(200000 / 65536)
        assert_eq!(manifest.assemble(&chunks).unwrap(), data);
    }

    #[test]
    fn empty_object_has_one_empty_chunk() {
        let (manifest, chunks) = Manifest::build(&[], 1024);
        assert_eq!(manifest.chunk_count(), 1);
        assert_eq!(manifest.length, 0);
        assert_eq!(manifest.assemble(&chunks).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn chunk_proofs_verify() {
        let data = vec![42u8; 10_000];
        let (manifest, chunks) = Manifest::build(&data, 1024);
        for (i, chunk) in chunks.iter().enumerate() {
            let proof = manifest.prove_chunk(i).unwrap();
            assert!(Manifest::verify_chunk(&manifest.object_id, chunk, &proof));
        }
    }

    #[test]
    fn tampered_chunk_rejected() {
        let data = vec![1u8; 5000];
        let (manifest, chunks) = Manifest::build(&data, 1024);
        let proof = manifest.prove_chunk(0).unwrap();
        let mut evil = chunks[0].clone();
        evil.data[0] ^= 1;
        assert!(!Manifest::verify_chunk(&manifest.object_id, &evil, &proof));
        // Re-addressed tampered chunk still fails the proof.
        let readdressed = Chunk::new(evil.data);
        assert!(!Manifest::verify_chunk(
            &manifest.object_id,
            &readdressed,
            &proof
        ));
    }

    #[test]
    fn assemble_rejects_wrong_order_and_missing() {
        // Modulus 251 (prime, coprime to the 1024 chunk size) guarantees
        // adjacent chunks differ, so the swap below is detectable.
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let (manifest, mut chunks) = Manifest::build(&data, 1024);
        chunks.swap(0, 1);
        assert!(manifest.assemble(&chunks).is_none());
        chunks.swap(0, 1);
        chunks.pop();
        assert!(manifest.assemble(&chunks).is_none());
    }

    #[test]
    fn object_id_depends_on_content() {
        let (m1, _) = Manifest::build(b"aaaa", 2);
        let (m2, _) = Manifest::build(b"aaab", 2);
        assert_ne!(m1.object_id, m2.object_id);
        let (m3, _) = Manifest::build(b"aaaa", 2);
        assert_eq!(m1.object_id, m3.object_id);
    }

    #[test]
    fn identical_chunks_dedupe_by_id() {
        let data = vec![7u8; 4096];
        let (manifest, chunks) = Manifest::build(&data, 1024);
        assert_eq!(manifest.chunk_count(), 4);
        assert!(chunks.iter().all(|c| c.id == chunks[0].id));
    }
}

//! Storage contracts: the on-chain service agreement of §3.3.
//!
//! "a contract is an object that defines a service agreement between two
//! parties: storage providers and consumers ... information about storage and
//! retrieval, pricing, and proof-of-storage requirements." Contracts encode
//! canonically (for anchoring in an `agora-chain` App transaction) and settle
//! against a proof-of-spacetime record.

use agora_crypto::{tagged_hash, Dec, DecodeError, Enc, Hash256};

use crate::incentives::TokenBank;
use crate::proofs::SpacetimeRecord;

/// Which proof regime a contract enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProofScheme {
    /// No proofs (service is best-effort / reciprocity-driven).
    None,
    /// Merkle proof-of-storage per window (Sia, Swarm).
    ProofOfStorage,
    /// Precomputed-audit proof-of-retrievability per window (Storj, MaidSafe).
    ProofOfRetrievability,
    /// Sealed proof-of-replication + spacetime windows (Filecoin).
    ProofOfReplication,
}

impl ProofScheme {
    fn tag(self) -> u8 {
        match self {
            ProofScheme::None => 0,
            ProofScheme::ProofOfStorage => 1,
            ProofScheme::ProofOfRetrievability => 2,
            ProofScheme::ProofOfReplication => 3,
        }
    }

    fn from_tag(t: u8) -> Result<ProofScheme, DecodeError> {
        Ok(match t {
            0 => ProofScheme::None,
            1 => ProofScheme::ProofOfStorage,
            2 => ProofScheme::ProofOfRetrievability,
            3 => ProofScheme::ProofOfReplication,
            other => return Err(DecodeError::BadTag(other)),
        })
    }
}

/// A storage service agreement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageContract {
    /// Paying client account.
    pub client: Hash256,
    /// Serving provider account.
    pub provider: Hash256,
    /// Object (or sealed-replica) commitment being stored.
    pub object: Hash256,
    /// Contracted size in bytes.
    pub size_bytes: u64,
    /// Tokens the provider earns per passed audit window.
    pub price_per_window: u64,
    /// Number of audit windows in the contract term.
    pub windows: u32,
    /// Provider collateral at risk (Swarm's SWEAR deposit; 0 if unused).
    pub collateral: u64,
    /// Proof regime.
    pub proof: ProofScheme,
}

impl StorageContract {
    /// Contract id.
    pub fn id(&self) -> Hash256 {
        tagged_hash("storage-contract", &self.encode())
    }

    /// Canonical encoding (for on-chain anchoring as an App payload).
    pub fn encode(&self) -> Vec<u8> {
        Enc::new()
            .hash(&self.client)
            .hash(&self.provider)
            .hash(&self.object)
            .u64(self.size_bytes)
            .u64(self.price_per_window)
            .u32(self.windows)
            .u64(self.collateral)
            .u8(self.proof.tag())
            .done()
    }

    /// Decode from an on-chain payload.
    pub fn decode(bytes: &[u8]) -> Result<StorageContract, DecodeError> {
        let mut d = Dec::new(bytes);
        let c = StorageContract {
            client: d.hash()?,
            provider: d.hash()?,
            object: d.hash()?,
            size_bytes: d.u64()?,
            price_per_window: d.u64()?,
            windows: d.u32()?,
            collateral: d.u64()?,
            proof: ProofScheme::from_tag(d.u8()?)?,
        };
        if !d.finished() {
            return Err(DecodeError::BadLength);
        }
        Ok(c)
    }

    /// Maximum payout over the full term.
    pub fn max_payout(&self) -> u64 {
        self.price_per_window * self.windows as u64
    }

    /// Settle the contract against its audit record: the provider earns the
    /// per-window price for each passed window; if the record fails the
    /// contract (more misses than `grace`), the collateral is forfeited to
    /// the client. Returns (provider_earnings, collateral_slashed).
    pub fn settle(
        &self,
        record: &SpacetimeRecord,
        grace: usize,
        bank: &mut TokenBank,
    ) -> (u64, u64) {
        let passed = (record.uptime_fraction() * record.window_count() as f64).round() as u64;
        let earned = passed.min(self.windows as u64) * self.price_per_window;
        bank.transfer(self.client, self.provider, earned as i64);
        let slashed = if record.satisfied(grace) {
            0
        } else {
            bank.transfer(self.provider, self.client, self.collateral as i64);
            self.collateral
        };
        (earned, slashed)
    }

    /// Slash up to `amount` of the provider's remaining stake to `auditor`
    /// — the market's per-miss penalty (the who-watches-the-watchers answer:
    /// the challenger is paid out of the cheater's deposit). `stake_left`
    /// tracks the unspent collateral across a contract's lifetime; the cut
    /// is bounded by it so a contract can never pay out more than it
    /// escrowed. Returns the amount actually moved.
    pub fn slash_stake(
        &self,
        bank: &mut TokenBank,
        auditor: Hash256,
        stake_left: &mut u64,
        amount: u64,
    ) -> u64 {
        let cut = amount.min(*stake_left);
        if cut > 0 {
            bank.transfer(self.provider, auditor, cut as i64);
            *stake_left -= cut;
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    fn contract() -> StorageContract {
        StorageContract {
            client: sha256(b"client"),
            provider: sha256(b"provider"),
            object: sha256(b"object"),
            size_bytes: 1 << 20,
            price_per_window: 5,
            windows: 10,
            collateral: 100,
            proof: ProofScheme::ProofOfReplication,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = contract();
        let decoded = StorageContract::decode(&c.encode()).unwrap();
        assert_eq!(decoded, c);
        assert_eq!(decoded.id(), c.id());
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(StorageContract::decode(&[1, 2, 3]).is_err());
        let mut bytes = contract().encode();
        bytes.push(0); // trailing garbage
        assert_eq!(StorageContract::decode(&bytes), Err(DecodeError::BadLength));
        let mut bytes = contract().encode();
        let last = bytes.len() - 1;
        bytes[last] = 9; // invalid proof tag
        assert_eq!(StorageContract::decode(&bytes), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn id_changes_with_fields() {
        let c = contract();
        let mut c2 = contract();
        c2.price_per_window += 1;
        assert_ne!(c.id(), c2.id());
    }

    #[test]
    fn settle_pays_per_passed_window() {
        let c = contract();
        let mut rec = SpacetimeRecord::default();
        for i in 0..10 {
            rec.record(i != 3); // 9 passed, 1 missed
        }
        let mut bank = TokenBank::new();
        let (earned, slashed) = c.settle(&rec, 1, &mut bank);
        assert_eq!(earned, 45);
        assert_eq!(slashed, 0);
        assert_eq!(bank.balance(&c.provider), 45);
        assert_eq!(bank.balance(&c.client), -45);
    }

    #[test]
    fn settle_slashes_collateral_on_breach() {
        let c = contract();
        let mut rec = SpacetimeRecord::default();
        for i in 0..10 {
            rec.record(i < 5); // 5 misses
        }
        let mut bank = TokenBank::new();
        let (earned, slashed) = c.settle(&rec, 1, &mut bank);
        assert_eq!(earned, 25);
        assert_eq!(slashed, 100);
        // Provider nets 25 − 100.
        assert_eq!(bank.balance(&c.provider), -75);
        assert_eq!(bank.total(), 0);
    }

    #[test]
    fn max_payout() {
        assert_eq!(contract().max_payout(), 50);
    }

    #[test]
    fn slash_stake_is_bounded_by_remaining_collateral() {
        let c = contract();
        let auditor = sha256(b"auditor");
        let mut bank = TokenBank::new();
        let mut stake_left = c.collateral; // 100
        assert_eq!(c.slash_stake(&mut bank, auditor, &mut stake_left, 60), 60);
        assert_eq!(stake_left, 40);
        // Second miss wants 60 but only 40 remains.
        assert_eq!(c.slash_stake(&mut bank, auditor, &mut stake_left, 60), 40);
        assert_eq!(stake_left, 0);
        // Exhausted stake slashes nothing and moves no tokens.
        assert_eq!(c.slash_stake(&mut bank, auditor, &mut stake_left, 60), 0);
        assert_eq!(bank.balance(&auditor), 100);
        assert_eq!(bank.balance(&c.provider), -100);
        assert_eq!(bank.total(), 0);
    }
}

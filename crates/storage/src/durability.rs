//! Fast Monte-Carlo durability model for the §3.3 design space (experiment
//! E6): replication factor vs erasure-code parameters vs repair cadence,
//! under independent and correlated provider failures.
//!
//! This deliberately abstracts away the message layer (the full protocol
//! lives in [`crate::node`]) so parameter sweeps over thousands of
//! object-years run in milliseconds.

use agora_sim::SimRng;

/// Parameters of one durability scenario.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityParams {
    /// Data shards (k). Replication r is `k = 1, m = r − 1`.
    pub k: u32,
    /// Parity shards (m). Object is lost if more than `m` shards are dead at
    /// once.
    pub m: u32,
    /// Mean time to failure of one shard's provider, in days.
    pub provider_mttf_days: f64,
    /// Repair check interval in days (lost shards found & re-placed then).
    pub repair_interval_days: f64,
    /// Probability per repair interval of a *correlated* event killing each
    /// shard independently with `correlated_severity`.
    pub correlated_event_prob: f64,
    /// Per-shard death probability during a correlated event.
    pub correlated_severity: f64,
    /// Simulated horizon in days.
    pub horizon_days: f64,
}

impl Default for DurabilityParams {
    fn default() -> DurabilityParams {
        DurabilityParams {
            k: 4,
            m: 2,
            provider_mttf_days: 60.0,
            repair_interval_days: 1.0,
            correlated_event_prob: 0.0,
            correlated_severity: 0.0,
            horizon_days: 365.0,
        }
    }
}

/// Outcome of a durability sweep.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityResult {
    /// Fraction of objects surviving the horizon.
    pub survival_rate: f64,
    /// Mean repairs per object over the horizon.
    pub repairs_per_object: f64,
    /// Repair traffic in shard-transfers per object-year.
    pub repair_transfers_per_object_year: f64,
    /// Storage overhead factor of the chosen code.
    pub storage_overhead: f64,
}

/// Simulate `objects` independent objects under the given parameters.
///
/// Discrete time in repair intervals: shards die by exponential failure
/// (rate = interval / mttf) plus correlated events; at each interval's end,
/// dead shards are repaired *if* at least `k` shards survive. An object is
/// lost permanently once fewer than `k` shards remain simultaneously.
pub fn simulate_durability(
    params: &DurabilityParams,
    objects: u32,
    rng: &mut SimRng,
) -> DurabilityResult {
    let n = (params.k + params.m) as usize;
    let steps = (params.horizon_days / params.repair_interval_days).ceil() as u64;
    let p_fail = 1.0 - (-params.repair_interval_days / params.provider_mttf_days).exp();

    let mut survived = 0u32;
    let mut total_repairs = 0u64;
    for _ in 0..objects {
        let mut alive = vec![true; n];
        let mut lost = false;
        for _ in 0..steps {
            // Independent failures.
            for a in alive.iter_mut() {
                if *a && rng.chance(p_fail) {
                    *a = false;
                }
            }
            // Correlated event.
            if params.correlated_event_prob > 0.0 && rng.chance(params.correlated_event_prob) {
                for a in alive.iter_mut() {
                    if *a && rng.chance(params.correlated_severity) {
                        *a = false;
                    }
                }
            }
            let live = alive.iter().filter(|&&a| a).count() as u32;
            if live < params.k {
                lost = true;
                break;
            }
            // Repair everything dead (reconstruction possible: live ≥ k).
            let dead = n as u32 - live;
            if dead > 0 {
                total_repairs += dead as u64;
                for a in alive.iter_mut() {
                    *a = true;
                }
            }
        }
        if !lost {
            survived += 1;
        }
    }
    let years = params.horizon_days / 365.0;
    DurabilityResult {
        survival_rate: survived as f64 / objects as f64,
        repairs_per_object: total_repairs as f64 / objects as f64,
        repair_transfers_per_object_year: total_repairs as f64 / objects as f64 / years,
        storage_overhead: (params.k + params.m) as f64 / params.k as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_repair_yields_high_durability() {
        let mut rng = SimRng::new(1);
        let params = DurabilityParams {
            repair_interval_days: 0.5,
            ..DurabilityParams::default()
        };
        let r = simulate_durability(&params, 3000, &mut rng);
        assert!(r.survival_rate > 0.98, "rate {}", r.survival_rate);
    }

    #[test]
    fn no_repair_loses_data() {
        let mut rng = SimRng::new(2);
        let params = DurabilityParams {
            repair_interval_days: 365.0, // one check at the very end
            ..DurabilityParams::default()
        };
        let r = simulate_durability(&params, 2000, &mut rng);
        assert!(r.survival_rate < 0.5, "rate {}", r.survival_rate);
    }

    #[test]
    fn more_parity_more_durable() {
        let mut rng = SimRng::new(3);
        let weak = simulate_durability(
            &DurabilityParams {
                k: 4,
                m: 1,
                repair_interval_days: 20.0,
                ..Default::default()
            },
            3000,
            &mut rng,
        );
        let strong = simulate_durability(
            &DurabilityParams {
                k: 4,
                m: 4,
                repair_interval_days: 20.0,
                ..Default::default()
            },
            3000,
            &mut rng,
        );
        assert!(strong.survival_rate > weak.survival_rate);
        assert!(strong.storage_overhead > weak.storage_overhead);
    }

    #[test]
    fn erasure_beats_replication_at_equal_overhead() {
        // 3× replication (k=1, m=2) vs RS(4, 8): same 3× overhead, but the
        // code tolerates 8 concurrent losses instead of 2.
        let mut rng = SimRng::new(4);
        let repl = simulate_durability(
            &DurabilityParams {
                k: 1,
                m: 2,
                repair_interval_days: 30.0,
                provider_mttf_days: 45.0,
                ..Default::default()
            },
            4000,
            &mut rng,
        );
        let ec = simulate_durability(
            &DurabilityParams {
                k: 4,
                m: 8,
                repair_interval_days: 30.0,
                provider_mttf_days: 45.0,
                ..Default::default()
            },
            4000,
            &mut rng,
        );
        assert_eq!(repl.storage_overhead, ec.storage_overhead);
        assert!(
            ec.survival_rate > repl.survival_rate,
            "ec {} vs repl {}",
            ec.survival_rate,
            repl.survival_rate
        );
    }

    #[test]
    fn correlated_failures_hurt() {
        let mut rng = SimRng::new(5);
        let base = DurabilityParams {
            k: 4,
            m: 2,
            repair_interval_days: 7.0,
            ..Default::default()
        };
        let indep = simulate_durability(&base, 3000, &mut rng);
        let correlated = simulate_durability(
            &DurabilityParams {
                correlated_event_prob: 0.02,
                correlated_severity: 0.5,
                ..base
            },
            3000,
            &mut rng,
        );
        assert!(
            correlated.survival_rate < indep.survival_rate,
            "correlated {} vs indep {}",
            correlated.survival_rate,
            indep.survival_rate
        );
    }

    #[test]
    fn repair_traffic_reported() {
        let mut rng = SimRng::new(6);
        let r = simulate_durability(&DurabilityParams::default(), 500, &mut rng);
        assert!(r.repairs_per_object > 0.0);
        assert!(r.repair_transfers_per_object_year >= r.repairs_per_object);
    }
}

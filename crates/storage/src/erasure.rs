//! Reed–Solomon erasure coding over GF(2^8), from scratch.
//!
//! `RS(k, m)` turns `k` data shards into `k + m` total shards such that *any*
//! `k` of them reconstruct the data. This is the redundancy mechanism behind
//! the §3.3 storage-system design space (replication is the special case
//! RS(1, m)). Encoding uses a systematic Vandermonde-derived matrix;
//! reconstruction inverts the surviving rows with Gaussian elimination.

/// GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
mod gf {
    /// Multiply without tables (carry-less, reduced mod 0x11b).
    const fn mul_slow(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= 0x1b;
            }
            b >>= 1;
        }
        acc
    }

    /// exp/log tables built at compile time over generator 3.
    const TABLES: ([u8; 512], [u8; 256]) = {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x = 1u8;
        let mut i = 0;
        while i < 255 {
            exp[i] = x;
            log[x as usize] = i as u8;
            x = mul_slow(x, 3);
            i += 1;
        }
        // Duplicate so exp[(a+b)] needs no mod.
        let mut j = 255;
        while j < 512 {
            exp[j] = exp[j - 255];
            j += 1;
        }
        (exp, log)
    };

    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let (exp, log) = (&TABLES.0, &TABLES.1);
        exp[log[a as usize] as usize + log[b as usize] as usize]
    }

    #[inline]
    pub fn inv(a: u8) -> u8 {
        assert!(a != 0, "inverse of zero");
        let (exp, log) = (&TABLES.0, &TABLES.1);
        exp[255 - log[a as usize] as usize]
    }

    #[inline]
    pub fn pow(base: u8, e: usize) -> u8 {
        if base == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let (exp, log) = (&TABLES.0, &TABLES.1);
        exp[(log[base as usize] as usize * e) % 255]
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn field_axioms_spot_checks() {
            // mul matches the slow reference on a grid.
            for a in (0..=255u16).step_by(7) {
                for b in (0..=255u16).step_by(11) {
                    assert_eq!(mul(a as u8, b as u8), mul_slow(a as u8, b as u8));
                }
            }
            // Inverses.
            for a in 1..=255u16 {
                assert_eq!(mul(a as u8, inv(a as u8)), 1, "a={a}");
            }
            // Distributivity sample.
            assert_eq!(mul(7, 13 ^ 29), mul(7, 13) ^ mul(7, 29));
        }

        #[test]
        fn pow_consistent() {
            assert_eq!(pow(2, 0), 1);
            assert_eq!(pow(2, 1), 2);
            assert_eq!(pow(2, 2), mul(2, 2));
            assert_eq!(pow(0, 0), 1);
            assert_eq!(pow(0, 5), 0);
        }
    }
}

/// Errors from erasure coding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErasureError {
    /// `k` must be ≥ 1 and `k + m` ≤ 255.
    BadParameters,
    /// Fewer than `k` shards available.
    NotEnoughShards,
    /// Shards have inconsistent lengths or indices out of range.
    MalformedShards,
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}
impl std::error::Error for ErasureError {}

/// A Reed–Solomon code with `k` data shards and `m` parity shards.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// (k + m) × k encode matrix; top k rows are the identity (systematic).
    matrix: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Build a code. Fails unless `1 ≤ k` and `k + m ≤ 255`.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, ErasureError> {
        if k == 0 || k + m > 255 {
            return Err(ErasureError::BadParameters);
        }
        // Systematic matrix: Vandermonde rows reduced so the top k×k block is
        // the identity. Build full Vandermonde (n × k), then column-reduce by
        // the top square block's inverse.
        let n = k + m;
        let mut vand = vec![vec![0u8; k]; n];
        for (r, row) in vand.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                // Row evaluation points 1..=n avoid the zero row.
                *cell = gf::pow((r + 1) as u8, c);
            }
        }
        let top: Vec<Vec<u8>> = vand[..k].to_vec();
        let top_inv = invert(&top).ok_or(ErasureError::BadParameters)?;
        let matrix = mat_mul(&vand, &top_inv);
        Ok(ReedSolomon { k, m, matrix })
    }

    /// Data shards per stripe.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shards per stripe.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shards per stripe.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Storage overhead factor (total / data).
    pub fn overhead(&self) -> f64 {
        (self.k + self.m) as f64 / self.k as f64
    }

    /// Encode `data` into `k + m` shards. The input is padded to a multiple
    /// of `k`; the first `k` shards are the (padded) data itself.
    pub fn encode(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = data.len().div_ceil(self.k).max(1);
        let mut shards: Vec<Vec<u8>> = (0..self.k)
            .map(|i| {
                let mut s = vec![0u8; shard_len];
                let start = i * shard_len;
                if start < data.len() {
                    let end = (start + shard_len).min(data.len());
                    s[..end - start].copy_from_slice(&data[start..end]);
                }
                s
            })
            .collect();
        for r in self.k..self.k + self.m {
            let row = &self.matrix[r];
            let mut parity = vec![0u8; shard_len];
            for (c, shard) in shards[..self.k].iter().enumerate() {
                let coef = row[c];
                if coef == 0 {
                    continue;
                }
                for (p, &s) in parity.iter_mut().zip(shard.iter()) {
                    *p ^= gf::mul(coef, s);
                }
            }
            shards.push(parity);
        }
        shards
    }

    /// Reconstruct the original data (of length `data_len`) from any `k`
    /// shards, given as `(shard_index, bytes)` pairs.
    pub fn reconstruct<S: AsRef<[u8]>>(
        &self,
        shards: &[(usize, S)],
        data_len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        if shards.len() < self.k {
            return Err(ErasureError::NotEnoughShards);
        }
        let use_shards = &shards[..self.k];
        let shard_len = use_shards[0].1.as_ref().len();
        if shard_len == 0 {
            return Err(ErasureError::MalformedShards);
        }
        for (idx, s) in use_shards {
            if *idx >= self.k + self.m || s.as_ref().len() != shard_len {
                return Err(ErasureError::MalformedShards);
            }
        }
        // Fast path: all k data shards present.
        let mut have_all_data = true;
        for want in 0..self.k {
            if !use_shards.iter().any(|(i, _)| *i == want) {
                have_all_data = false;
                break;
            }
        }
        let data_shards: Vec<Vec<u8>> = if have_all_data {
            let mut out = vec![Vec::new(); self.k];
            for (i, s) in use_shards {
                if *i < self.k {
                    out[*i] = s.as_ref().to_vec();
                }
            }
            out
        } else {
            // Solve: rows of the encode matrix for the present shards form a
            // k×k system over the data shards.
            let sub: Vec<Vec<u8>> = use_shards
                .iter()
                .map(|(i, _)| self.matrix[*i].clone())
                .collect();
            let inv = invert(&sub).ok_or(ErasureError::MalformedShards)?;
            (0..self.k)
                .map(|r| {
                    let mut out = vec![0u8; shard_len];
                    for (c, (_, shard)) in use_shards.iter().enumerate() {
                        let coef = inv[r][c];
                        if coef == 0 {
                            continue;
                        }
                        for (o, &s) in out.iter_mut().zip(shard.as_ref().iter()) {
                            *o ^= gf::mul(coef, s);
                        }
                    }
                    out
                })
                .collect()
        };
        let mut data = Vec::with_capacity(self.k * shard_len);
        for s in data_shards {
            data.extend_from_slice(&s);
        }
        if data_len > data.len() {
            return Err(ErasureError::MalformedShards);
        }
        data.truncate(data_len);
        Ok(data)
    }
}

/// Multiply two matrices over GF(2^8).
fn mat_mul(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let rows = a.len();
    let inner = b.len();
    let cols = b[0].len();
    let mut out = vec![vec![0u8; cols]; rows];
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0u8;
            for i in 0..inner {
                acc ^= gf::mul(a[r][i], b[i][c]);
            }
            out[r][c] = acc;
        }
    }
    out
}

/// Invert a square matrix over GF(2^8) by Gauss–Jordan. `None` if singular.
fn invert(m: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    // Augmented [M | I].
    let mut aug: Vec<Vec<u8>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.resize(2 * n, 0);
            r[n + i] = 1;
            r
        })
        .collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| aug[r][col] != 0)?;
        aug.swap(col, pivot);
        // Normalize pivot row.
        let inv_p = gf::inv(aug[col][col]);
        for v in aug[col].iter_mut() {
            *v = gf::mul(*v, inv_p);
        }
        // Eliminate other rows. The pivot row is cloned so the destination
        // row can be borrowed mutably while reading it.
        let pivot_row = aug[col].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != col && row[col] != 0 {
                let factor = row[col];
                for (dst, src) in row.iter_mut().zip(pivot_row.iter()) {
                    *dst ^= gf::mul(factor, *src);
                }
            }
        }
    }
    Some(aug.into_iter().map(|row| row[n..].to_vec()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(
            ReedSolomon::new(0, 3).unwrap_err(),
            ErasureError::BadParameters
        );
        assert_eq!(
            ReedSolomon::new(200, 60).unwrap_err(),
            ErasureError::BadParameters
        );
        assert!(ReedSolomon::new(1, 0).is_ok());
        assert!(ReedSolomon::new(100, 155).is_ok());
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<u8> = (0..40).collect();
        let shards = rs.encode(&data);
        assert_eq!(shards.len(), 6);
        // First k shards are the raw data split.
        let rebuilt: Vec<u8> = shards[..4].concat();
        assert_eq!(&rebuilt[..40], &data[..]);
    }

    #[test]
    fn reconstruct_from_all_data_shards() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = b"hello erasure coded world".to_vec();
        let shards = rs.encode(&data);
        let avail: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, shards[i].clone())).collect();
        assert_eq!(rs.reconstruct(&avail, data.len()).unwrap(), data);
    }

    #[test]
    fn reconstruct_from_any_k_of_n() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data: Vec<u8> = (0..97).map(|i| (i * 31 % 256) as u8).collect();
        let shards = rs.encode(&data);
        // Every 4-subset of the 7 shards must reconstruct.
        let n = shards.len();
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    for d in c + 1..n {
                        let avail = vec![
                            (a, shards[a].clone()),
                            (b, shards[b].clone()),
                            (c, shards[c].clone()),
                            (d, shards[d].clone()),
                        ];
                        assert_eq!(
                            rs.reconstruct(&avail, data.len()).unwrap(),
                            data,
                            "subset {a},{b},{c},{d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn too_few_shards_fails() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = vec![9u8; 64];
        let shards = rs.encode(&data);
        let avail: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i + 2, shards[i + 2].clone())).collect();
        assert_eq!(
            rs.reconstruct(&avail, data.len()).unwrap_err(),
            ErasureError::NotEnoughShards
        );
    }

    #[test]
    fn corrupt_metadata_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let data = vec![1u8; 10];
        let shards = rs.encode(&data);
        // Out-of-range index.
        let avail = vec![(0, shards[0].clone()), (9, shards[1].clone())];
        assert_eq!(
            rs.reconstruct(&avail, data.len()).unwrap_err(),
            ErasureError::MalformedShards
        );
        // Mismatched lengths.
        let avail = vec![(0, shards[0].clone()), (1, vec![0u8; 3])];
        assert_eq!(
            rs.reconstruct(&avail, data.len()).unwrap_err(),
            ErasureError::MalformedShards
        );
    }

    #[test]
    fn replication_special_case() {
        // RS(1, 3) = 4-way replication: any single shard is the data.
        let rs = ReedSolomon::new(1, 3).unwrap();
        let data = b"replicate me".to_vec();
        let shards = rs.encode(&data);
        assert_eq!(shards.len(), 4);
        for (i, shard) in shards.iter().enumerate() {
            let got = rs.reconstruct(&[(i, shard.clone())], data.len()).unwrap();
            assert_eq!(got, data, "replica {i}");
        }
    }

    #[test]
    fn tiny_and_unaligned_inputs() {
        for len in [0usize, 1, 2, 3, 5, 7, 16, 17] {
            let rs = ReedSolomon::new(3, 2).unwrap();
            let data: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            let shards = rs.encode(&data);
            let avail = vec![
                (1, shards[1].clone()),
                (3, shards[3].clone()),
                (4, shards[4].clone()),
            ];
            assert_eq!(rs.reconstruct(&avail, len).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn overhead_reported() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        assert_eq!(rs.overhead(), 1.5);
        assert_eq!(rs.total_shards(), 6);
        assert_eq!(rs.data_shards(), 4);
        assert_eq!(rs.parity_shards(), 2);
    }

    #[test]
    fn corrupted_shard_changes_output() {
        // RS without error *location* can't detect corruption by itself —
        // integrity comes from content addressing; this documents that.
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = vec![7u8; 20];
        let shards = rs.encode(&data);
        let mut bad = shards[3].clone();
        bad[0] ^= 0xff;
        let avail = vec![(0, shards[0].clone()), (3, bad)];
        let got = rs.reconstruct(&avail, data.len()).unwrap();
        assert_ne!(got, data);
    }
}

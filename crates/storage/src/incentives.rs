//! Incentive schemes: why a selfish node would serve your bytes.
//!
//! §3.3: "selfish nodes can interfere with this sharing model if they do not
//! have incentives to behave correctly". Table 2's systems answer this three
//! ways, all implemented here:
//!
//! * [`BitswapLedger`] — IPFS: pairwise byte-debt accounting; peers refuse
//!   service to freeloaders whose debt ratio is too high.
//! * [`TokenBank`] — Sia/Storj/Filecoin/Swarm: tokens move from storage
//!   consumers to providers per contract (on-chain settlement is modeled by
//!   `agora-chain` transfers at contract boundaries; within a contract this
//!   bank tracks accrual).
//! * [`ResourceScore`] — MaidSafe: proof-of-resource rank; nodes earn
//!   standing by answering audits, and lose it by failing them.

use std::collections::HashMap;

use agora_crypto::Hash256;

/// The incentive scheme labels of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IncentiveScheme {
    /// Pairwise bitswap-style debt ledgers (IPFS).
    BitswapLedger,
    /// Proof-of-resource + distributed transactions (MaidSafe).
    ProofOfResource,
    /// Blockchain contract with proof-of-storage payouts (Sia).
    ProofOfStorage,
    /// Payment token with proof-of-retrievability audits (Storj).
    ProofOfRetrievability,
    /// Deposit-backed proof-of-storage insurance (Swarm's SWEAR).
    Swear,
    /// Proof-of-replication / proof-of-spacetime payouts (Filecoin).
    ProofOfReplication,
    /// No storage incentive (Blockstack delegates storage elsewhere).
    None,
}

impl IncentiveScheme {
    /// Human label as in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            IncentiveScheme::BitswapLedger => "Bitswap ledgers",
            IncentiveScheme::ProofOfResource => "Proof-of-resource / distributed transaction",
            IncentiveScheme::ProofOfStorage => "Proof-of-storage",
            IncentiveScheme::ProofOfRetrievability => "Proof-of-retrievability",
            IncentiveScheme::Swear => "Proof-of-storage: SWEAR",
            IncentiveScheme::ProofOfReplication => "Proof-of-replication / spacetime / work",
            IncentiveScheme::None => "N/A",
        }
    }
}

/// Pairwise byte-debt ledger (one node's view of all its peers).
#[derive(Clone, Debug, Default)]
pub struct BitswapLedger {
    /// peer → (bytes we sent them, bytes they sent us).
    entries: HashMap<Hash256, (u64, u64)>,
    /// Refuse to serve a peer whose debt (sent − received) exceeds this.
    pub debt_limit: u64,
}

impl BitswapLedger {
    /// New ledger with a debt limit in bytes.
    pub fn new(debt_limit: u64) -> BitswapLedger {
        BitswapLedger {
            entries: HashMap::new(),
            debt_limit,
        }
    }

    /// Record bytes we served to `peer`.
    pub fn record_sent(&mut self, peer: Hash256, bytes: u64) {
        self.entries.entry(peer).or_insert((0, 0)).0 += bytes;
    }

    /// Record bytes `peer` served to us.
    pub fn record_received(&mut self, peer: Hash256, bytes: u64) {
        self.entries.entry(peer).or_insert((0, 0)).1 += bytes;
    }

    /// `peer`'s debt to us (bytes we sent beyond what we received).
    pub fn debt_of(&self, peer: &Hash256) -> u64 {
        let (sent, recv) = self.entries.get(peer).copied().unwrap_or((0, 0));
        sent.saturating_sub(recv)
    }

    /// Whether we are willing to serve `bytes` more to `peer`.
    pub fn will_serve(&self, peer: &Hash256, bytes: u64) -> bool {
        self.debt_of(peer) + bytes <= self.debt_limit
    }
}

/// A token account bank for contract accrual (off-chain running balance;
/// settle on-chain at contract end).
#[derive(Clone, Debug, Default)]
pub struct TokenBank {
    balances: HashMap<Hash256, i64>,
}

impl TokenBank {
    /// Fresh bank.
    pub fn new() -> TokenBank {
        TokenBank::default()
    }

    /// Credit (positive) or debit (negative) an account.
    pub fn adjust(&mut self, account: Hash256, delta: i64) {
        *self.balances.entry(account).or_insert(0) += delta;
    }

    /// Move tokens between accounts.
    pub fn transfer(&mut self, from: Hash256, to: Hash256, amount: i64) {
        self.adjust(from, -amount);
        self.adjust(to, amount);
    }

    /// Account balance (may be negative mid-contract: accrued liability).
    pub fn balance(&self, account: &Hash256) -> i64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Sum over all balances — zero in a closed system.
    pub fn total(&self) -> i64 {
        self.balances.values().sum()
    }
}

/// EWMA audit-success reputation: the storage market's placement signal.
///
/// Each audit outcome folds into an exponentially-weighted moving average
/// of pass (1.0) / fail (0.0), so a provider's standing tracks its *recent*
/// reliability: one miss dents a long clean record only slightly, while a
/// flapping or discarding provider converges to zero and falls below the
/// placement floor. Fresh providers start at 1.0 (optimistic bootstrap —
/// the market discovers cheaters through audits, not priors).
#[derive(Clone, Debug)]
pub struct EwmaReputation {
    alpha: f64,
    scores: HashMap<Hash256, f64>,
}

impl EwmaReputation {
    /// New table with smoothing weight `alpha` in (0, 1]: the fraction of
    /// the score replaced by each new observation.
    pub fn new(alpha: f64) -> EwmaReputation {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaReputation {
            alpha,
            scores: HashMap::new(),
        }
    }

    /// Fold one audit outcome into a provider's score.
    pub fn observe(&mut self, provider: Hash256, passed: bool) {
        let s = self.scores.entry(provider).or_insert(1.0);
        let x = if passed { 1.0 } else { 0.0 };
        *s = (1.0 - self.alpha) * *s + self.alpha * x;
    }

    /// A provider's standing (1.0 = fresh / perfect, → 0.0 = always missing).
    pub fn score(&self, provider: &Hash256) -> f64 {
        self.scores.get(provider).copied().unwrap_or(1.0)
    }

    /// Whether a provider clears the placement floor.
    pub fn eligible(&self, provider: &Hash256, floor: f64) -> bool {
        self.score(provider) >= floor
    }
}

/// MaidSafe-style proof-of-resource standing.
#[derive(Clone, Debug, Default)]
pub struct ResourceScore {
    scores: HashMap<Hash256, f64>,
}

impl ResourceScore {
    /// Fresh score table.
    pub fn new() -> ResourceScore {
        ResourceScore::default()
    }

    /// Record an audit outcome for a node; passing grows standing, failing
    /// shrinks it multiplicatively (fast fall, slow climb).
    pub fn record_audit(&mut self, node: Hash256, passed: bool) {
        let s = self.scores.entry(node).or_insert(1.0);
        if passed {
            *s += 1.0;
        } else {
            *s *= 0.5;
        }
    }

    /// A node's standing (1.0 = fresh).
    pub fn score(&self, node: &Hash256) -> f64 {
        self.scores.get(node).copied().unwrap_or(1.0)
    }

    /// Whether a node is in good standing (eligible for new contracts).
    pub fn eligible(&self, node: &Hash256) -> bool {
        self.score(node) >= 0.5
    }

    /// Rank nodes by standing, best first.
    pub fn ranked(&self) -> Vec<(Hash256, f64)> {
        let mut v: Vec<(Hash256, f64)> = self.scores.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    #[test]
    fn bitswap_debt_gates_service() {
        let mut l = BitswapLedger::new(1000);
        let peer = sha256(b"peer");
        assert!(l.will_serve(&peer, 1000));
        l.record_sent(peer, 900);
        assert_eq!(l.debt_of(&peer), 900);
        assert!(l.will_serve(&peer, 100));
        assert!(!l.will_serve(&peer, 101), "over the debt limit");
        // Reciprocation restores service.
        l.record_received(peer, 600);
        assert_eq!(l.debt_of(&peer), 300);
        assert!(l.will_serve(&peer, 700));
    }

    #[test]
    fn bitswap_unknown_peer_has_no_debt() {
        let l = BitswapLedger::new(10);
        assert_eq!(l.debt_of(&sha256(b"nobody")), 0);
        assert!(l.will_serve(&sha256(b"nobody"), 10));
    }

    #[test]
    fn token_bank_is_zero_sum() {
        let mut bank = TokenBank::new();
        let (a, b) = (sha256(b"a"), sha256(b"b"));
        bank.transfer(a, b, 50);
        bank.transfer(b, a, 20);
        assert_eq!(bank.balance(&a), -30);
        assert_eq!(bank.balance(&b), 30);
        assert_eq!(bank.total(), 0);
    }

    #[test]
    fn ewma_reputation_falls_fast_and_recovers_slowly() {
        let mut rep = EwmaReputation::new(0.3);
        let p = sha256(b"provider");
        assert_eq!(rep.score(&p), 1.0, "fresh providers start optimistic");
        assert!(rep.eligible(&p, 0.5));
        // Three consecutive misses: 0.7, 0.49, 0.343 — below a 0.5 floor.
        for _ in 0..3 {
            rep.observe(p, false);
        }
        assert!(rep.score(&p) < 0.5);
        assert!(!rep.eligible(&p, 0.5));
        // Recovery is gradual: one pass does not restore standing.
        rep.observe(p, true);
        assert!(rep.score(&p) < 0.6);
        for _ in 0..10 {
            rep.observe(p, true);
        }
        assert!(
            rep.eligible(&p, 0.5),
            "sustained passes restore eligibility"
        );
    }

    #[test]
    fn ewma_reputation_one_miss_barely_dents_a_clean_record() {
        let mut rep = EwmaReputation::new(0.1);
        let p = sha256(b"steady");
        for _ in 0..50 {
            rep.observe(p, true);
        }
        rep.observe(p, false);
        assert!(rep.score(&p) > 0.85, "{}", rep.score(&p));
    }

    #[test]
    fn resource_score_rises_and_falls() {
        let mut rs = ResourceScore::new();
        let n = sha256(b"node");
        assert!(rs.eligible(&n));
        for _ in 0..5 {
            rs.record_audit(n, true);
        }
        assert_eq!(rs.score(&n), 6.0);
        // Failures halve: 6 → 3 → 1.5 → 0.75 → 0.375.
        for _ in 0..4 {
            rs.record_audit(n, false);
        }
        assert!(!rs.eligible(&n));
    }

    #[test]
    fn resource_ranking_orders_best_first() {
        let mut rs = ResourceScore::new();
        let (good, bad) = (sha256(b"good"), sha256(b"bad"));
        rs.record_audit(good, true);
        rs.record_audit(bad, false);
        let ranked = rs.ranked();
        assert_eq!(ranked[0].0, good);
        assert_eq!(ranked[1].0, bad);
    }

    #[test]
    fn scheme_labels_match_table2() {
        assert_eq!(IncentiveScheme::BitswapLedger.label(), "Bitswap ledgers");
        assert_eq!(IncentiveScheme::None.label(), "N/A");
    }
}

//! # agora-storage — decentralized storage networks
//!
//! Everything §3.3 of the paper surveys, implemented and runnable:
//!
//! * [`chunk`] — content addressing: chunks, manifests, inclusion proofs.
//! * [`erasure`] — Reed–Solomon over GF(2^8) from scratch (replication is
//!   the k = 1 special case).
//! * [`proofs`] — proof-of-storage, proof-of-retrievability, sealed
//!   proof-of-replication, proof-of-spacetime.
//! * [`incentives`] — bitswap debt ledgers (IPFS), token banks
//!   (Sia/Storj/Filecoin/Swarm), proof-of-resource standing (MaidSafe).
//! * [`contract`] — on-chain storage contracts and settlement/slashing.
//! * [`profiles`] — the seven Table 2 systems as live configurations, and
//!   the Table 2 renderer.
//! * [`node`] — the storage network as an `agora-sim` protocol: erasure-
//!   coded placement, retrievability audits, automatic repair, cheating
//!   providers.
//! * [`durability`] — fast Monte-Carlo durability/repair design-space sweeps
//!   (experiment E6).
//! * [`attacks`] — Sybil / outsourcing / generation attacks against the
//!   proof schemes (experiment E5).
//! * [`market`] — the live storage market: erasure-coded placement by
//!   reputation, staked contracts, a deterministic challenge oracle with
//!   an Open → Resolved / Expired lifecycle, slashing, and a repair actor
//!   (experiment E17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod chunk;
pub mod contract;
pub mod durability;
pub mod erasure;
pub mod incentives;
pub mod market;
pub mod node;
pub mod profiles;
pub mod proofs;

pub use attacks::{
    discard_detection_probability, play_porep_game, AttackEnv, AttackResult, CheatStrategy,
};
pub use chunk::{Chunk, Manifest, DEFAULT_CHUNK_SIZE};
pub use contract::{ProofScheme, StorageContract};
pub use durability::{simulate_durability, DurabilityParams, DurabilityResult};
pub use erasure::{ErasureError, ReedSolomon};
pub use incentives::{BitswapLedger, EwmaReputation, IncentiveScheme, ResourceScore, TokenBank};
pub use market::{
    ChallengeRecord, ChallengeState, MarketSpec, OracleSchedule, PlannedChallenge, StorageMarket,
};
pub use node::{ProviderStrategy, StorageMsg, StorageNode, StorageResult};
pub use profiles::{render_table2, table2_profiles, BlockchainUsage, Redundancy, StorageProfile};
pub use proofs::{
    por_make_audits, por_respond, por_verify, seal, sealed_commitment, unseal, Audit,
    PorepChallenge, PosChallenge, PosResponse, SealParams, SpacetimeRecord,
};

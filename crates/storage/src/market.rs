//! The storage market: the financing loop §5 says decentralized storage
//! is missing, wired together from the mechanism library and run live
//! inside the simulation.
//!
//! Objects are erasure-coded RS(k, m) ([`crate::erasure`]) and placed
//! across provider nodes by reputation — an EWMA audit-success score
//! ([`crate::incentives::EwmaReputation`]) that skips flaky providers.
//! Every placement is backed by a [`StorageContract`] carrying provider
//! stake. A deterministic oracle — seed-derived, compiled up front exactly
//! like `ChaosSpec` schedules ([`MarketSpec::compile_oracle`]) — issues
//! retrievability challenges with an Open → Resolved / Expired TTL
//! lifecycle: a proof that lands before the deadline resolves the
//! challenge and earns the per-window price; a missing or wrong proof
//! expires it, slashes stake to the auditor, and drops reputation. A
//! repair actor detects shard loss (missed audits, or churn through the
//! idempotent kill/revive path) and re-encodes lost shards from any k
//! survivors, metering repair traffic.
//!
//! Determinism contract: the challenge schedule is a pure function of
//! `(spec, seed)`; all run-time randomness (audit nonces) comes from one
//! dedicated [`SimRng`] stream; market state iterates `Vec`s in slot
//! order, never hash maps — so market runs are byte-identical across
//! harness thread counts like everything else.

use std::rc::Rc;

use agora_crypto::{sha256, Hash256};
use agora_sim::{NodeId, SimDuration, SimRng, SimTime, Simulation};

use crate::contract::{ProofScheme, StorageContract};
use crate::erasure::ReedSolomon;
use crate::incentives::{EwmaReputation, TokenBank};
use crate::node::StorageNode;
use crate::proofs::{por_make_audits, por_verify, Audit};

/// What the market runs: how many objects, the code, the money, and the
/// audit cadence.
#[derive(Clone, Copy, Debug)]
pub struct MarketSpec {
    /// Objects under contract.
    pub objects: usize,
    /// Bytes per object.
    pub object_bytes: usize,
    /// Data shards (k = 1 is plain replication).
    pub k: usize,
    /// Parity shards.
    pub m: usize,
    /// Provider collateral escrowed per shard contract.
    pub stake: u64,
    /// Tokens a provider earns per resolved challenge.
    pub price_per_window: u64,
    /// Stake slashed per expired challenge.
    pub slash_per_miss: u64,
    /// One challenge per object per interval.
    pub challenge_interval: SimDuration,
    /// Open → Expired deadline: the proof must land within this TTL.
    pub challenge_ttl: SimDuration,
    /// Market horizon the oracle schedule covers.
    pub horizon: SimDuration,
    /// EWMA smoothing weight for the reputation score.
    pub alpha: f64,
    /// Reputation floor below which a provider is skipped for placement.
    pub floor: f64,
}

impl Default for MarketSpec {
    fn default() -> MarketSpec {
        MarketSpec {
            objects: 8,
            object_bytes: 32 * 1024,
            k: 4,
            m: 2,
            stake: 1_000,
            price_per_window: 2,
            slash_per_miss: 100,
            challenge_interval: SimDuration::from_secs(60),
            challenge_ttl: SimDuration::from_secs(20),
            horizon: SimDuration::from_mins(40),
            alpha: 0.3,
            floor: 0.5,
        }
    }
}

/// One scheduled retrievability challenge (compile-time plan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedChallenge {
    /// Offset from the market's install instant.
    pub at: SimDuration,
    /// Object index.
    pub object: u32,
    /// Shard slot to challenge.
    pub slot: u32,
}

/// The compiled, time-sorted challenge schedule.
#[derive(Clone, Debug, Default)]
pub struct OracleSchedule {
    challenges: Vec<PlannedChallenge>,
}

impl OracleSchedule {
    /// The planned challenges, sorted by offset.
    pub fn challenges(&self) -> &[PlannedChallenge] {
        &self.challenges
    }

    /// Number of planned challenges.
    pub fn len(&self) -> usize {
        self.challenges.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.challenges.is_empty()
    }
}

impl MarketSpec {
    /// Audit rounds across the horizon.
    pub fn rounds(&self) -> u64 {
        (self.horizon.micros() / self.challenge_interval.micros().max(1)).max(1)
    }

    /// Expand this spec into the oracle's challenge schedule, drawing all
    /// randomness from a fresh RNG seeded with `seed` — the same
    /// compile-then-replay pattern as `ChaosSpec::compile`. Pure: same
    /// inputs, same schedule.
    pub fn compile_oracle(&self, seed: u64) -> OracleSchedule {
        let mut rng = SimRng::new(seed);
        let interval = self.challenge_interval.micros().max(1);
        let mut challenges = Vec::new();
        for r in 0..self.rounds() {
            for o in 0..self.objects {
                // Land inside the middle half of the round so challenges
                // never race the install instant and deadlines stay inside
                // the round.
                let jitter = interval / 4 + rng.below((interval / 2).max(1));
                let slot = rng.below((self.k + self.m) as u64) as u32;
                challenges.push(PlannedChallenge {
                    at: SimDuration(r * interval + jitter),
                    object: o as u32,
                    slot,
                });
            }
        }
        challenges.sort_by_key(|c| (c.at, c.object, c.slot));
        OracleSchedule { challenges }
    }
}

/// Challenge lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChallengeState {
    /// Issued; the proof deadline has not passed.
    Open,
    /// Proof verified within the TTL; provider paid.
    Resolved,
    /// No valid proof by the deadline; stake slashed.
    Expired,
}

/// One challenge's full lifecycle record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChallengeRecord {
    /// Object index.
    pub object: u32,
    /// Shard slot challenged.
    pub slot: u32,
    /// When the challenge opened.
    pub opened_at: SimTime,
    /// Proof deadline (`opened_at + ttl`).
    pub deadline: SimTime,
    /// Final (or current) state.
    pub state: ChallengeState,
}

/// One shard slot's live placement.
struct SlotState {
    /// Index into the market's provider list.
    provider: usize,
    /// False after a missed audit until repair re-places the shard.
    alive: bool,
    /// Precomputed retrievability audits for the current placement.
    audits: Vec<Audit>,
    /// The backing service agreement.
    contract: StorageContract,
    /// Unspent collateral; the contract defaults at zero.
    stake_left: u64,
}

struct ObjectState {
    id: Hash256,
    data_len: usize,
    slots: Vec<SlotState>,
    /// Fewer than k shards survive anywhere: unrecoverable.
    lost: bool,
}

/// The live market: oracle cursor, placements, money, and reputation.
///
/// Drive it with [`StorageMarket::run_for`] / [`StorageMarket::run_until`]
/// (drop-in replacements for `sim.run_for`), or compose with a
/// `ChaosController` via [`StorageMarket::run_until_with`].
pub struct StorageMarket {
    spec: MarketSpec,
    schedule: OracleSchedule,
    next: usize,
    base: SimTime,
    rng: SimRng,
    providers: Vec<NodeId>,
    accounts: Vec<Hash256>,
    client_acct: Hash256,
    oracle_acct: Hash256,
    bank: TokenBank,
    reputation: EwmaReputation,
    objects: Vec<ObjectState>,
    open: std::collections::VecDeque<ChallengeRecord>,
    history: Vec<ChallengeRecord>,
    challenges: u64,
    resolved: u64,
    slashes: u64,
    stake_lost: u64,
    repairs: u64,
    repair_bytes: u64,
    repair_read_bytes: u64,
    objects_lost: u64,
}

impl StorageMarket {
    /// Install a market on `sim`: compile the oracle schedule, encode
    /// every object RS(k, m), place shards on `providers` by reputation,
    /// and open one staked contract per shard slot.
    pub fn install(
        sim: &mut Simulation<StorageNode>,
        spec: MarketSpec,
        seed: u64,
        providers: Vec<NodeId>,
    ) -> StorageMarket {
        assert!(
            providers.len() >= spec.k + spec.m,
            "need at least k+m providers"
        );
        let schedule = spec.compile_oracle(seed);
        let accounts: Vec<Hash256> = providers
            .iter()
            .map(|p| sha256(format!("market-provider-{}", p.0).as_bytes()))
            .collect();
        let mut market = StorageMarket {
            spec,
            schedule,
            next: 0,
            base: sim.now(),
            rng: SimRng::new(seed ^ 0x4D41_524B), // "MARK": dedicated stream
            providers,
            accounts,
            client_acct: sha256(b"market-client"),
            oracle_acct: sha256(b"market-oracle"),
            bank: TokenBank::new(),
            reputation: EwmaReputation::new(spec.alpha),
            objects: Vec::new(),
            open: std::collections::VecDeque::new(),
            history: Vec::new(),
            challenges: 0,
            resolved: 0,
            slashes: 0,
            stake_lost: 0,
            repairs: 0,
            repair_bytes: 0,
            repair_read_bytes: 0,
            objects_lost: 0,
        };
        let rs = ReedSolomon::new(spec.k, spec.m).expect("valid k/m");
        for o in 0..spec.objects {
            // Deterministic per-object payload; the object id is its hash.
            let data: Vec<u8> = (0..spec.object_bytes)
                .map(|i| ((i as u64).wrapping_mul(31) ^ (o as u64).wrapping_mul(131)) as u8)
                .collect();
            let id = sha256(&data);
            let shards = rs.encode(&data);
            let mut slots = Vec::new();
            let mut used = Vec::new();
            for (si, shard) in shards.into_iter().enumerate() {
                let pi = market
                    .pick_provider(sim, &used, o + si)
                    .expect("k+m providers available");
                used.push(pi);
                let shard: Rc<[u8]> = Rc::from(shard);
                sim.with_ctx(market.providers[pi], |n, ctx| {
                    n.provider_store(ctx, id, si as u32, Rc::clone(&shard));
                });
                slots.push(market.new_slot(pi, id, &shard));
            }
            market.objects.push(ObjectState {
                id,
                data_len: data.len(),
                slots,
                lost: false,
            });
        }
        market
    }

    /// Fresh slot state for a shard placed on provider `pi`.
    fn new_slot(&mut self, pi: usize, object: Hash256, shard: &[u8]) -> SlotState {
        let audits = por_make_audits(shard, self.spec.rounds() as usize, &mut self.rng);
        SlotState {
            provider: pi,
            alive: true,
            audits,
            contract: StorageContract {
                client: self.client_acct,
                provider: self.accounts[pi],
                object,
                size_bytes: shard.len() as u64,
                price_per_window: self.spec.price_per_window,
                windows: self.spec.rounds() as u32,
                collateral: self.spec.stake,
                proof: ProofScheme::ProofOfRetrievability,
            },
            stake_left: self.spec.stake,
        }
    }

    /// Best eligible provider by reputation, excluding `exclude` indices.
    /// Ties break in rotation order starting at `offset` so equal-score
    /// providers share the load deterministically. Requires the provider
    /// to be up (placement must land somewhere that can hold bytes).
    fn pick_provider(
        &self,
        sim: &Simulation<StorageNode>,
        exclude: &[usize],
        offset: usize,
    ) -> Option<usize> {
        let n = self.providers.len();
        let mut best: Option<(f64, usize)> = None;
        // Two passes: eligible providers first, then (if none clear the
        // floor) anyone still standing — a degraded market beats no market.
        for pass in 0..2 {
            for j in 0..n {
                let i = (offset + j) % n;
                if exclude.contains(&i) || !sim.is_up(self.providers[i]) {
                    continue;
                }
                let s = self.reputation.score(&self.accounts[i]);
                if pass == 0 && !self.reputation.eligible(&self.accounts[i], self.spec.floor) {
                    continue;
                }
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
            if best.is_some() {
                break;
            }
        }
        best.map(|(_, i)| i)
    }

    /// Drop-in replacement for `sim.run_for(d)` that opens and resolves
    /// challenges at their exact instants.
    pub fn run_for(&mut self, sim: &mut Simulation<StorageNode>, d: SimDuration) {
        let limit = sim.now() + d;
        self.run_until(sim, limit);
    }

    /// As [`StorageMarket::run_for`], but to an absolute deadline.
    pub fn run_until(&mut self, sim: &mut Simulation<StorageNode>, limit: SimTime) {
        self.run_until_with(sim, limit, &mut |sim, t| sim.run_until(t));
    }

    /// As [`StorageMarket::run_until`], but advancing the simulation
    /// through `advance` — pass a closure that delegates to a
    /// `ChaosController` (or a `WorkloadDriver`) to compose the market
    /// with fault injection or churn; all three drive the same idempotent
    /// kill/revive path.
    pub fn run_until_with(
        &mut self,
        sim: &mut Simulation<StorageNode>,
        limit: SimTime,
        advance: &mut dyn FnMut(&mut Simulation<StorageNode>, SimTime),
    ) {
        loop {
            let next_open = self
                .schedule
                .challenges
                .get(self.next)
                .map(|c| self.base + c.at);
            let next_deadline = self.open.front().map(|c| c.deadline);
            // Deadlines win ties so a proof is judged before the next
            // challenge against the same slot opens.
            let (at, is_deadline) = match (next_open, next_deadline) {
                (Some(o), Some(d)) if d <= o => (d, true),
                (Some(o), _) => (o, false),
                (None, Some(d)) => (d, true),
                (None, None) => break,
            };
            if at > limit {
                break;
            }
            advance(sim, at);
            if is_deadline {
                let ch = self.open.pop_front().expect("deadline implies open");
                self.judge(sim, ch);
            } else {
                let planned = self.schedule.challenges[self.next];
                self.next += 1;
                self.open_challenge(sim, planned);
            }
        }
        advance(sim, limit);
    }

    /// Open one planned challenge (and retry any pending repairs for the
    /// visited object first, so revived providers get re-placed shards).
    fn open_challenge(&mut self, sim: &mut Simulation<StorageNode>, planned: PlannedChallenge) {
        let oi = planned.object as usize;
        if self.objects[oi].lost {
            return;
        }
        self.repair_object(sim, oi);
        let si = planned.slot as usize;
        if !self.objects[oi].slots[si].alive {
            return; // still unrepaired; nothing to challenge
        }
        let now = sim.now();
        let ch = ChallengeRecord {
            object: planned.object,
            slot: planned.slot,
            opened_at: now,
            deadline: now + self.spec.challenge_ttl,
            state: ChallengeState::Open,
        };
        self.challenges += 1;
        sim.metrics_mut().incr("market.challenge", 1);
        sim.trace_note("market.challenge", planned.object as f64);
        self.open.push_back(ch);
    }

    /// Judge an open challenge at its deadline: Resolved pays the
    /// provider and lifts reputation; Expired slashes stake to the
    /// auditor, drops reputation, and triggers repair.
    fn judge(&mut self, sim: &mut Simulation<StorageNode>, mut ch: ChallengeRecord) {
        let (oi, si) = (ch.object as usize, ch.slot as usize);
        let (id, provider_idx, alive, audit) = {
            let obj = &mut self.objects[oi];
            let slot = &mut obj.slots[si];
            (obj.id, slot.provider, slot.alive, slot.audits.pop())
        };
        let node = self.providers[provider_idx];
        let pass = alive
            && sim.is_up(node)
            && match audit {
                Some(a) => sim
                    .node(node)
                    .provider_digest(&id, ch.slot, a.nonce)
                    .is_some_and(|d| por_verify(&a, &d)),
                // Audit budget exhausted (cannot happen with a full
                // schedule): fall back to a holds-the-bytes check.
                None => sim.node(node).provider_shard(&id, ch.slot).is_some(),
            };
        let acct = self.accounts[provider_idx];
        if pass {
            ch.state = ChallengeState::Resolved;
            self.resolved += 1;
            self.bank
                .transfer(self.client_acct, acct, self.spec.price_per_window as i64);
            self.reputation.observe(acct, true);
            sim.metrics_mut().incr("market.resolved", 1);
            sim.trace_note("market.resolved", ch.object as f64);
        } else {
            ch.state = ChallengeState::Expired;
            let slot = &mut self.objects[oi].slots[si];
            let cut = slot.contract.slash_stake(
                &mut self.bank,
                self.oracle_acct,
                &mut slot.stake_left,
                self.spec.slash_per_miss,
            );
            slot.alive = false;
            self.slashes += 1;
            self.stake_lost += cut;
            self.reputation.observe(acct, false);
            sim.metrics_mut().incr("market.slash", 1);
            sim.metrics_mut().incr("market.stake_lost", cut);
            sim.trace_note("market.slash", cut as f64);
            self.repair_object(sim, oi);
        }
        self.history.push(ch);
        // Market health after every verdict: fraction of slots still
        // funded+alive and the stake backing them. Gated so the O(slots)
        // rollup vanishes along with the probes.
        if sim.probe_active() {
            let (mut alive, mut total, mut stake) = (0u64, 0u64, 0u64);
            for obj in &self.objects {
                for slot in &obj.slots {
                    total += 1;
                    if slot.alive {
                        alive += 1;
                        stake += slot.stake_left;
                    }
                }
            }
            if total > 0 {
                sim.probe_note("storage.funded_ratio", alive as f64 / total as f64);
                sim.probe_note("storage.stake_at_risk", stake as f64);
            }
        }
    }

    /// The repair actor: re-encode every dead slot of one object from any
    /// k surviving shards readable right now, re-place on the best
    /// eligible provider, and open a fresh staked contract.
    fn repair_object(&mut self, sim: &mut Simulation<StorageNode>, oi: usize) {
        if self.objects[oi].lost {
            return;
        }
        let dead: Vec<usize> = (0..self.objects[oi].slots.len())
            .filter(|&si| !self.objects[oi].slots[si].alive)
            .collect();
        if dead.is_empty() {
            return;
        }
        let (id, data_len) = (self.objects[oi].id, self.objects[oi].data_len);
        let (k, m) = (self.spec.k, self.spec.m);
        // Gather k survivors from providers that are up and actually hold
        // the bytes, in slot order (deterministic). A dead (slashed) slot
        // whose provider was merely down and has since revived still holds
        // the bytes — repair reads from whoever has data, contract or not.
        let mut have: Vec<(usize, Rc<[u8]>)> = Vec::new();
        for si in 0..self.objects[oi].slots.len() {
            let slot = &self.objects[oi].slots[si];
            let node = self.providers[slot.provider];
            if !sim.is_up(node) {
                continue;
            }
            if let Some(d) = sim.node(node).provider_shard(&id, si as u32) {
                have.push((si, d));
                if have.len() == k {
                    break;
                }
            }
        }
        if have.len() < k {
            // Not enough readable right now. Down-but-intact providers may
            // come back (kill/revive preserves state), so only declare the
            // object lost when fewer than k shards exist *anywhere* — up
            // or down, contract alive or slashed.
            let held = (0..self.objects[oi].slots.len())
                .filter(|&si| {
                    let slot = &self.objects[oi].slots[si];
                    sim.node(self.providers[slot.provider])
                        .provider_shard(&id, si as u32)
                        .is_some()
                })
                .count();
            if held < k {
                self.objects[oi].lost = true;
                self.objects_lost += 1;
                sim.metrics_mut().incr("market.objects_lost", 1);
                sim.trace_note("market.object_lost", oi as f64);
            }
            return;
        }
        let read_bytes: u64 = have.iter().map(|(_, d)| d.len() as u64).sum();
        let rs = ReedSolomon::new(k, m).expect("valid k/m");
        let Ok(data) = rs.reconstruct(&have, data_len) else {
            return;
        };
        let all = rs.encode(&data);
        self.repair_read_bytes += read_bytes;
        sim.metrics_mut()
            .incr("market.repair_read_bytes", read_bytes);
        for si in dead {
            let exclude: Vec<usize> = self.objects[oi].slots.iter().map(|s| s.provider).collect();
            let Some(pi) = self.pick_provider(sim, &exclude, oi + si) else {
                continue; // nowhere to place; retried at the next visit
            };
            let shard: Rc<[u8]> = Rc::from(all[si].clone());
            if sim
                .with_ctx(self.providers[pi], |n, ctx| {
                    n.provider_store(ctx, id, si as u32, Rc::clone(&shard));
                })
                .is_none()
            {
                continue;
            }
            let slot = self.new_slot(pi, id, &shard);
            let up = shard.len() as u64;
            self.objects[oi].slots[si] = slot;
            self.repairs += 1;
            self.repair_bytes += up;
            sim.metrics_mut().incr("market.repairs", 1);
            sim.metrics_mut().incr("market.repair_bytes", up);
            sim.trace_note("market.repair_bytes", up as f64);
        }
    }

    // -- observers ----------------------------------------------------------

    /// Fraction of objects still reconstructible from shards providers
    /// actually hold (a down-but-intact or slashed-but-holding provider
    /// still counts: churn is not data loss; a discarded shard is).
    pub fn durability(&self, sim: &Simulation<StorageNode>) -> f64 {
        if self.objects.is_empty() {
            return 1.0;
        }
        let ok = self
            .objects
            .iter()
            .filter(|o| {
                !o.lost
                    && o.slots
                        .iter()
                        .enumerate()
                        .filter(|(si, s)| {
                            sim.node(self.providers[s.provider])
                                .provider_shard(&o.id, *si as u32)
                                .is_some()
                        })
                        .count()
                        >= self.spec.k
            })
            .count();
        ok as f64 / self.objects.len() as f64
    }

    /// Whether `object` can serve a *paid* retrieval right now: not lost,
    /// and at least k shards sit on live, funded (stake remaining),
    /// bytes-holding providers. The workload experiment routes demand
    /// through this — unfunded contracts mean unserved users, which is
    /// the paper's financing argument in one predicate.
    pub fn serviceable(&self, sim: &Simulation<StorageNode>, object: usize) -> bool {
        let Some(o) = self.objects.get(object) else {
            return false;
        };
        !o.lost
            && o.slots
                .iter()
                .enumerate()
                .filter(|(si, s)| {
                    s.alive
                        && s.stake_left > 0
                        && sim.is_up(self.providers[s.provider])
                        && sim
                            .node(self.providers[s.provider])
                            .provider_shard(&o.id, *si as u32)
                            .is_some()
                })
                .count()
                >= self.spec.k
    }

    /// The full challenge lifecycle history, in judgment order.
    pub fn history(&self) -> &[ChallengeRecord] {
        &self.history
    }

    /// Challenges opened so far.
    pub fn challenges(&self) -> u64 {
        self.challenges
    }

    /// Challenges resolved (proof landed in time).
    pub fn resolved(&self) -> u64 {
        self.resolved
    }

    /// Challenges expired (slash events).
    pub fn slashes(&self) -> u64 {
        self.slashes
    }

    /// Total stake slashed to the auditor.
    pub fn stake_lost(&self) -> u64 {
        self.stake_lost
    }

    /// Shards re-placed by the repair actor.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Bytes re-uploaded by repair (the write side).
    pub fn repair_bytes(&self) -> u64 {
        self.repair_bytes
    }

    /// Bytes read to reconstruct during repair (the erasure-coding
    /// amplification side).
    pub fn repair_read_bytes(&self) -> u64 {
        self.repair_read_bytes
    }

    /// Objects declared unrecoverable.
    pub fn objects_lost(&self) -> u64 {
        self.objects_lost
    }

    /// The market's token bank (zero-sum across client, providers,
    /// auditor).
    pub fn bank(&self) -> &TokenBank {
        &self.bank
    }

    /// The reputation table.
    pub fn reputation(&self) -> &EwmaReputation {
        &self.reputation
    }

    /// A provider's market account id (for bank / reputation lookups).
    pub fn provider_account(&self, provider: NodeId) -> Option<Hash256> {
        self.providers
            .iter()
            .position(|&p| p == provider)
            .map(|i| self.accounts[i])
    }

    /// The auditor account slashed stake is paid to.
    pub fn oracle_account(&self) -> Hash256 {
        self.oracle_acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ProviderStrategy;
    use agora_sim::DeviceClass;

    fn build(
        n: usize,
        strategy: impl Fn(usize) -> ProviderStrategy,
        seed: u64,
    ) -> (Simulation<StorageNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let providers: Vec<NodeId> = (0..n)
            .map(|i| {
                sim.add_node(
                    StorageNode::provider(strategy(i)),
                    DeviceClass::PersonalComputer,
                )
            })
            .collect();
        (sim, providers)
    }

    fn spec() -> MarketSpec {
        MarketSpec {
            horizon: SimDuration::from_mins(10),
            ..MarketSpec::default()
        }
    }

    #[test]
    fn oracle_schedule_is_deterministic_and_sorted() {
        let s = spec();
        let a = s.compile_oracle(7);
        let b = s.compile_oracle(7);
        assert_eq!(a.challenges(), b.challenges());
        assert_eq!(a.len() as u64, s.rounds() * s.objects as u64);
        for w in a.challenges().windows(2) {
            assert!(w[0].at <= w[1].at, "schedule must be time-sorted");
        }
        let c = s.compile_oracle(8);
        assert_ne!(a.challenges(), c.challenges(), "seed changes the plan");
    }

    #[test]
    fn honest_market_resolves_everything_and_slashes_nothing() {
        let (mut sim, providers) = build(8, |_| ProviderStrategy::Honest, 1);
        let mut market = StorageMarket::install(&mut sim, spec(), 1, providers);
        market.run_for(&mut sim, SimDuration::from_mins(11));
        assert!(market.challenges() > 0);
        assert_eq!(market.resolved(), market.challenges());
        assert_eq!(market.slashes(), 0);
        assert_eq!(market.durability(&sim), 1.0);
        assert_eq!(market.bank().total(), 0, "token flow is zero-sum");
    }

    #[test]
    fn discarding_provider_is_slashed_and_its_shards_repaired() {
        let (mut sim, providers) = build(
            8,
            |i| {
                if i == 0 {
                    ProviderStrategy::DiscardAfterAck
                } else {
                    ProviderStrategy::Honest
                }
            },
            2,
        );
        let discarder = providers[0];
        let mut market = StorageMarket::install(&mut sim, spec(), 2, providers);
        market.run_for(&mut sim, SimDuration::from_mins(11));
        assert!(market.slashes() > 0, "discarder must be caught");
        assert!(market.stake_lost() > 0);
        assert!(market.repairs() > 0, "lost shards must be re-placed");
        assert_eq!(market.durability(&sim), 1.0, "repair restores redundancy");
        // The auditor is paid out of the cheater's stake.
        assert!(market.bank().balance(&market.oracle_account()) > 0);
        let acct = market.provider_account(discarder).unwrap();
        assert!(
            !market.reputation().eligible(&acct, spec().floor),
            "reputation must fall below the placement floor: {}",
            market.reputation().score(&acct)
        );
        assert!(market.bank().balance(&acct) < 0, "slashes exceed earnings");
    }

    #[test]
    fn killed_provider_expires_challenges_and_repair_reroutes() {
        let (mut sim, providers) = build(8, |_| ProviderStrategy::Honest, 3);
        let victim = providers[0];
        let mut market = StorageMarket::install(&mut sim, spec(), 3, providers);
        market.run_for(&mut sim, SimDuration::from_mins(2));
        sim.kill(victim);
        market.run_for(&mut sim, SimDuration::from_mins(8));
        sim.revive(victim);
        market.run_for(&mut sim, SimDuration::from_mins(1));
        assert!(market.slashes() > 0, "down provider misses deadlines");
        assert!(market.repairs() > 0);
        assert_eq!(market.durability(&sim), 1.0);
    }

    #[test]
    fn challenge_lifecycle_is_deterministic() {
        let run = || {
            let (mut sim, providers) = build(
                8,
                |i| {
                    if i < 2 {
                        ProviderStrategy::PartialKeep(50)
                    } else {
                        ProviderStrategy::Honest
                    }
                },
                4,
            );
            let victim = providers[2];
            let mut market = StorageMarket::install(&mut sim, spec(), 4, providers);
            market.run_for(&mut sim, SimDuration::from_mins(3));
            sim.kill(victim);
            market.run_for(&mut sim, SimDuration::from_mins(4));
            sim.revive(victim);
            market.run_for(&mut sim, SimDuration::from_mins(4));
            market.history().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same Open/Resolved/Expired sequence");
        assert!(a.iter().any(|c| c.state == ChallengeState::Resolved));
        assert!(a.iter().any(|c| c.state == ChallengeState::Expired));
        assert!(
            a.iter().all(|c| c.state != ChallengeState::Open),
            "every judged record left the Open state"
        );
        assert!(
            a.iter()
                .all(|c| c.deadline.since(c.opened_at) == spec().challenge_ttl),
            "TTL is uniform"
        );
    }

    #[test]
    fn replication_is_the_k1_special_case() {
        let (mut sim, providers) = build(6, |_| ProviderStrategy::Honest, 5);
        let rep = MarketSpec {
            k: 1,
            m: 2,
            ..spec()
        };
        let mut market = StorageMarket::install(&mut sim, rep, 5, providers.clone());
        sim.kill(providers[0]);
        market.run_for(&mut sim, SimDuration::from_mins(11));
        assert_eq!(market.durability(&sim), 1.0);
        // Replication repair re-uploads whole objects.
        if market.repairs() > 0 {
            assert_eq!(
                market.repair_bytes() % rep.object_bytes as u64,
                0,
                "each replica repair moves a full object copy"
            );
        }
    }

    #[test]
    fn serviceable_requires_funding() {
        let (mut sim, providers) = build(8, |_| ProviderStrategy::Honest, 6);
        let tiny_stake = MarketSpec { stake: 0, ..spec() };
        let market = StorageMarket::install(&mut sim, tiny_stake, 6, providers);
        // Zero stake: contracts are born in default; paid retrieval is off.
        assert!(!market.serviceable(&sim, 0));
        assert_eq!(market.durability(&sim), 1.0, "bytes exist, money does not");
    }
}

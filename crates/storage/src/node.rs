//! The decentralized storage network as a simulated protocol.
//!
//! Clients erasure-code objects across provider nodes, audit shards with
//! proof-of-retrievability challenges, and repair lost redundancy by
//! reconstructing from surviving shards — the §3.3 design space (replica
//! counts, repair strategies, audit cadence) made executable. Providers can
//! run cheating strategies (ack-then-discard, partial keep) to exercise the
//! incentive/audit machinery.

use std::collections::HashMap;
use std::rc::Rc;

use agora_crypto::{sha256, Hash256};
use agora_sim::retry::{CTR_RETRY_ATTEMPTS, CTR_RETRY_GAVE_UP};
use agora_sim::{Ctx, NodeId, Protocol, Retrier, RetryPolicy, SimDuration, SimTime};

use crate::erasure::ReedSolomon;
use crate::proofs::{por_make_audits, por_respond, por_verify, Audit};

/// Wire messages.
#[derive(Clone, Debug)]
pub enum StorageMsg {
    /// Store a shard.
    PutShard {
        /// Object id.
        object: Hash256,
        /// Shard index.
        index: u32,
        /// Shard bytes, shared so re-sends and provider storage are
        /// refcount bumps, not copies.
        data: Rc<[u8]>,
    },
    /// Acknowledge a stored shard.
    AckPut {
        /// Object id.
        object: Hash256,
        /// Shard index.
        index: u32,
    },
    /// Fetch a shard.
    GetShard {
        /// Object id.
        object: Hash256,
        /// Shard index.
        index: u32,
        /// Client request id.
        req: u64,
    },
    /// Shard fetch response (None = not held).
    ShardData {
        /// Echoed request id.
        req: u64,
        /// Shard index.
        index: u32,
        /// The bytes, if held (shared with the provider's store).
        data: Option<Rc<[u8]>>,
    },
    /// Proof-of-retrievability challenge.
    AuditChallenge {
        /// Object id.
        object: Hash256,
        /// Shard index.
        index: u32,
        /// Audit nonce.
        nonce: u64,
        /// Client request id.
        req: u64,
    },
    /// Audit response (None = shard not held).
    AuditResponse {
        /// Echoed request id.
        req: u64,
        /// `H(nonce ‖ shard)` if held.
        digest: Option<Hash256>,
    },
}

impl StorageMsg {
    fn wire_size(&self) -> u64 {
        match self {
            StorageMsg::PutShard { data, .. } => 40 + data.len() as u64,
            StorageMsg::AckPut { .. } => 40,
            StorageMsg::GetShard { .. } => 48,
            StorageMsg::ShardData { data, .. } => 16 + data.as_ref().map_or(0, |d| d.len() as u64),
            StorageMsg::AuditChallenge { .. } => 56,
            StorageMsg::AuditResponse { .. } => 48,
        }
    }
}

/// How a provider (mis)behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProviderStrategy {
    /// Stores and serves faithfully.
    Honest,
    /// Acknowledges PUTs but discards the bytes (classic freeloader).
    DiscardAfterAck,
    /// Keeps shards with the given percent probability, discards the rest.
    PartialKeep(u8),
}

/// Outcome of a client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageResult {
    /// Object placed; all shards acknowledged.
    Stored {
        /// Object id.
        object: Hash256,
        /// Shards acknowledged.
        shards: u32,
    },
    /// Object fetched and reconstructed.
    Retrieved(Vec<u8>),
    /// Retrieval failed (too few live shards).
    Unavailable,
    /// Put failed (not enough providers acknowledged in time).
    PutFailed,
}

struct ShardPlace {
    index: u32,
    provider: NodeId,
    audits: Vec<Audit>,
    alive: bool,
    acked: bool,
    /// Shard bytes retained until acked so a retrying client can re-send
    /// them. Only populated when a retry policy is active.
    pending_data: Option<Rc<[u8]>>,
}

struct ObjectRecord {
    data_len: usize,
    k: usize,
    m: usize,
    shards: Vec<ShardPlace>,
    audit_pos: usize,
}

enum OpState {
    Put {
        object: Hash256,
        deadline_ticks: u32,
        /// Op issue time, so completion records true event-time latency
        /// (the `storage.put_secs` histogram) rather than poll granularity.
        started: SimTime,
    },
    Get {
        object: Hash256,
        collected: Vec<(usize, Rc<[u8]>)>,
        deadline_ticks: u32,
        repair_index: Option<u32>,
        /// Op issue time for the `storage.get_secs` latency histogram.
        started: SimTime,
    },
    AuditWait {
        object: Hash256,
        index: u32,
        expected: Audit,
        done: bool,
    },
}

/// Client-side state.
pub struct ClientState {
    providers: Vec<NodeId>,
    objects: HashMap<Hash256, ObjectRecord>,
    ops: HashMap<u64, OpState>,
    results: HashMap<u64, StorageResult>,
    next_op: u64,
    audit_interval: SimDuration,
    audits_per_shard: usize,
    repair_enabled: bool,
    retry: RetryPolicy,
    /// Per-op retry pacing: (budget tracker, op ticks until the next resend
    /// round). Empty unless a retry policy is active.
    retriers: HashMap<u64, (Retrier, u32)>,
}

/// Provider-side state.
pub struct ProviderState {
    shards: HashMap<(Hash256, u32), Rc<[u8]>>,
    strategy: ProviderStrategy,
}

enum Role {
    Client(Box<ClientState>),
    Provider(ProviderState),
}

/// A storage-network participant (client or provider).
pub struct StorageNode {
    role: Role,
}

const TAG_AUDIT_TICK: u64 = u64::MAX;
const OP_TICK: SimDuration = SimDuration::from_secs(2);
const MAX_OP_TICKS: u32 = 60;

/// Backoff durations are paced in whole op ticks (minimum one).
fn ticks_for(d: SimDuration) -> u32 {
    (d.micros() / OP_TICK.micros()).max(1) as u32
}

impl StorageNode {
    /// A storage client that places objects on `providers`.
    pub fn client(providers: Vec<NodeId>, audit_interval: SimDuration) -> StorageNode {
        StorageNode::client_with_retry(providers, audit_interval, RetryPolicy::none())
    }

    /// A storage client whose puts/gets re-send outstanding shards on a
    /// backoff schedule. `RetryPolicy::none()` reproduces the default
    /// client byte-for-byte.
    pub fn client_with_retry(
        providers: Vec<NodeId>,
        audit_interval: SimDuration,
        retry: RetryPolicy,
    ) -> StorageNode {
        StorageNode {
            role: Role::Client(Box::new(ClientState {
                providers,
                objects: HashMap::new(),
                ops: HashMap::new(),
                results: HashMap::new(),
                next_op: 0,
                audit_interval,
                audits_per_shard: 64,
                repair_enabled: true,
                retry,
                retriers: HashMap::new(),
            })),
        }
    }

    /// A storage provider with the given strategy.
    pub fn provider(strategy: ProviderStrategy) -> StorageNode {
        StorageNode {
            role: Role::Provider(ProviderState {
                shards: HashMap::new(),
                strategy,
            }),
        }
    }

    /// Disable automatic repair (for ablation experiments).
    pub fn set_repair(&mut self, enabled: bool) {
        if let Role::Client(c) = &mut self.role {
            c.repair_enabled = enabled;
        }
    }

    /// Shards currently held (providers only).
    pub fn shards_held(&self) -> usize {
        match &self.role {
            Role::Provider(p) => p.shards.len(),
            Role::Client(_) => 0,
        }
    }

    /// Store a shard directly into a provider (the market's placement /
    /// repair path), applying the provider's strategy exactly as a
    /// `PutShard` message would. Returns whether the provider kept the
    /// bytes — which the market deliberately ignores: cheaters are
    /// discovered by audits, not by trusting the store path.
    pub fn provider_store(
        &mut self,
        ctx: &mut Ctx<'_, StorageMsg>,
        object: Hash256,
        index: u32,
        data: Rc<[u8]>,
    ) -> bool {
        let Role::Provider(p) = &mut self.role else {
            panic!("provider_store on a client");
        };
        let keep = match p.strategy {
            ProviderStrategy::Honest => true,
            ProviderStrategy::DiscardAfterAck => false,
            ProviderStrategy::PartialKeep(pct) => ctx.rng().chance(pct as f64 / 100.0),
        };
        if keep {
            p.shards.insert((object, index), data);
        }
        keep
    }

    /// Answer a retrievability challenge from local state (providers only;
    /// `None` = shard not held).
    pub fn provider_digest(&self, object: &Hash256, index: u32, nonce: u64) -> Option<Hash256> {
        match &self.role {
            Role::Provider(p) => p
                .shards
                .get(&(*object, index))
                .map(|d| por_respond(nonce, d)),
            Role::Client(_) => None,
        }
    }

    /// Borrow a held shard (providers only) — the market repair actor's
    /// read path.
    pub fn provider_shard(&self, object: &Hash256, index: u32) -> Option<Rc<[u8]>> {
        match &self.role {
            Role::Provider(p) => p.shards.get(&(*object, index)).cloned(),
            Role::Client(_) => None,
        }
    }

    /// Live-shard count the client believes an object has.
    pub fn live_shards(&self, object: &Hash256) -> usize {
        match &self.role {
            Role::Client(c) => c
                .objects
                .get(object)
                .map_or(0, |o| o.shards.iter().filter(|s| s.alive).count()),
            Role::Provider(_) => 0,
        }
    }

    /// Store an object with RS(k, m). Returns the operation id; the object id
    /// is `sha256(data)`.
    pub fn start_put(
        &mut self,
        ctx: &mut Ctx<'_, StorageMsg>,
        data: &[u8],
        k: usize,
        m: usize,
    ) -> (u64, Hash256) {
        let Role::Client(c) = &mut self.role else {
            panic!("start_put on a provider");
        };
        let object = sha256(data);
        let rs = ReedSolomon::new(k, m).expect("valid k/m");
        let shards = rs.encode(data);
        // Pick distinct providers round-robin from a shuffled order.
        let mut order: Vec<NodeId> = c.providers.clone();
        ctx.rng().shuffle(&mut order);
        let mut places = Vec::new();
        for (i, shard) in shards.into_iter().enumerate() {
            let provider = order[i % order.len()];
            let shard: Rc<[u8]> = Rc::from(shard);
            let audits = por_make_audits(&shard, c.audits_per_shard, ctx.rng());
            let shard_len = shard.len() as u64;
            let pending_data = c.retry.is_active().then(|| Rc::clone(&shard));
            let msg = StorageMsg::PutShard {
                object,
                index: i as u32,
                data: shard,
            };
            let size = msg.wire_size();
            ctx.send(provider, msg, size);
            ctx.metrics().incr("storage.shard_bytes_up", shard_len);
            ctx.trace_point("storage.shard_bytes_up", shard_len as f64);
            places.push(ShardPlace {
                index: i as u32,
                provider,
                audits,
                alive: true,
                acked: false,
                pending_data,
            });
        }
        c.objects.insert(
            object,
            ObjectRecord {
                data_len: data.len(),
                k,
                m,
                shards: places,
                audit_pos: 0,
            },
        );
        let op = c.next_op;
        c.next_op += 1;
        c.ops.insert(
            op,
            OpState::Put {
                object,
                deadline_ticks: MAX_OP_TICKS,
                started: ctx.now(),
            },
        );
        ctx.set_timer(OP_TICK, op);
        if c.retry.is_active() {
            let mut r = Retrier::new(c.retry);
            if let Some(d) = r.next_backoff(ctx.rng()) {
                c.retriers.insert(op, (r, ticks_for(d)));
            }
        }
        (op, object)
    }

    /// Retrieve an object previously stored by this client.
    pub fn start_get(&mut self, ctx: &mut Ctx<'_, StorageMsg>, object: Hash256) -> u64 {
        let Role::Client(c) = &mut self.role else {
            panic!("start_get on a provider");
        };
        let op = c.next_op;
        c.next_op += 1;
        let Some(rec) = c.objects.get(&object) else {
            c.results.insert(op, StorageResult::Unavailable);
            return op;
        };
        for s in rec.shards.iter().filter(|s| s.alive) {
            let msg = StorageMsg::GetShard {
                object,
                index: s.index,
                req: op,
            };
            let size = msg.wire_size();
            ctx.send(s.provider, msg, size);
        }
        c.ops.insert(
            op,
            OpState::Get {
                object,
                collected: Vec::new(),
                deadline_ticks: MAX_OP_TICKS,
                repair_index: None,
                started: ctx.now(),
            },
        );
        ctx.set_timer(OP_TICK, op);
        if c.retry.is_active() {
            let mut r = Retrier::new(c.retry);
            if let Some(d) = r.next_backoff(ctx.rng()) {
                c.retriers.insert(op, (r, ticks_for(d)));
            }
        }
        op
    }

    /// Collect a finished operation's result.
    pub fn take_result(&mut self, op: u64) -> Option<StorageResult> {
        match &mut self.role {
            Role::Client(c) => c.results.remove(&op),
            Role::Provider(_) => None,
        }
    }

    // -- client internals ---------------------------------------------------

    fn client_audit_round(&mut self, ctx: &mut Ctx<'_, StorageMsg>) {
        let Role::Client(c) = &mut self.role else {
            return;
        };
        let mut challenges = Vec::new();
        // Audit objects in key order: HashMap iteration order is randomized
        // per process, and the op-id/challenge sequence must be reproducible.
        let mut audit_order: Vec<Hash256> = c.objects.keys().copied().collect();
        audit_order.sort_unstable();
        for object in audit_order {
            let Some(rec) = c.objects.get_mut(&object) else {
                continue;
            };
            // Audit one live shard per object per round, rotating.
            let live: Vec<usize> = (0..rec.shards.len())
                .filter(|&i| rec.shards[i].alive)
                .collect();
            if live.is_empty() {
                continue;
            }
            let pick = live[rec.audit_pos % live.len()];
            rec.audit_pos += 1;
            let place = &mut rec.shards[pick];
            let Some(audit) = place.audits.pop() else {
                continue; // audits exhausted; stop auditing this shard
            };
            let op = c.next_op;
            c.next_op += 1;
            challenges.push((op, object, place.index, place.provider, audit));
        }
        for (op, object, index, provider, audit) in challenges {
            let msg = StorageMsg::AuditChallenge {
                object,
                index,
                nonce: audit.nonce,
                req: op,
            };
            let size = msg.wire_size();
            ctx.send(provider, msg, size);
            ctx.metrics().incr("storage.audits_sent", 1);
            ctx.trace_point("storage.audits_sent", index as f64);
            c.ops.insert(
                op,
                OpState::AuditWait {
                    object,
                    index,
                    expected: audit,
                    done: false,
                },
            );
            ctx.set_timer(OP_TICK * 3, op);
        }
        let interval = c.audit_interval;
        ctx.set_timer(interval, TAG_AUDIT_TICK);
    }

    fn mark_shard_dead(&mut self, ctx: &mut Ctx<'_, StorageMsg>, object: Hash256, index: u32) {
        let Role::Client(c) = &mut self.role else {
            return;
        };
        let Some(rec) = c.objects.get_mut(&object) else {
            return;
        };
        let Some(place) = rec.shards.iter_mut().find(|s| s.index == index) else {
            return;
        };
        if !place.alive {
            return;
        }
        place.alive = false;
        ctx.metrics().incr("storage.shards_lost_detected", 1);
        if !c.repair_enabled {
            return;
        }
        // Repair: fetch enough shards to reconstruct, then re-place `index`.
        let op = c.next_op;
        c.next_op += 1;
        for s in rec.shards.iter().filter(|s| s.alive) {
            let msg = StorageMsg::GetShard {
                object,
                index: s.index,
                req: op,
            };
            let size = msg.wire_size();
            ctx.send(s.provider, msg, size);
        }
        c.ops.insert(
            op,
            OpState::Get {
                object,
                collected: Vec::new(),
                deadline_ticks: MAX_OP_TICKS,
                repair_index: Some(index),
                started: ctx.now(),
            },
        );
        ctx.set_timer(OP_TICK, op);
        ctx.metrics().incr("storage.repairs_started", 1);
        ctx.trace_point("storage.repairs_started", index as f64);
    }

    fn try_complete_get(&mut self, ctx: &mut Ctx<'_, StorageMsg>, op: u64) {
        let Role::Client(c) = &mut self.role else {
            return;
        };
        let Some(OpState::Get {
            object,
            collected,
            repair_index,
            started,
            ..
        }) = c.ops.get(&op)
        else {
            return;
        };
        let object = *object;
        let repair_index = *repair_index;
        let started = *started;
        let rec = c.objects.get(&object).expect("record exists");
        if collected.len() < rec.k {
            return;
        }
        let rs = ReedSolomon::new(rec.k, rec.m).expect("valid");
        let shards: Vec<(usize, Rc<[u8]>)> = collected.clone();
        let data_len = rec.data_len;
        match rs.reconstruct(&shards, data_len) {
            Ok(data) => {
                c.ops.remove(&op);
                c.retriers.remove(&op);
                match repair_index {
                    None => {
                        ctx.metrics().incr("storage.get_ok", 1);
                        let took = ctx.now().since(started).secs_f64();
                        ctx.metrics().sample("storage.get_secs", took);
                        c.results.insert(op, StorageResult::Retrieved(data));
                    }
                    Some(index) => {
                        // Regenerate the lost shard and place it on a fresh
                        // provider.
                        let mut all = rs.encode(&data);
                        let shard: Rc<[u8]> = Rc::from(std::mem::take(&mut all[index as usize]));
                        let rec = c.objects.get_mut(&object).expect("record");
                        let used: Vec<NodeId> = rec
                            .shards
                            .iter()
                            .filter(|s| s.alive)
                            .map(|s| s.provider)
                            .collect();
                        let mut candidates: Vec<NodeId> = c
                            .providers
                            .iter()
                            .copied()
                            .filter(|p| !used.contains(p))
                            .collect();
                        let provider = if candidates.is_empty() {
                            *ctx.rng().pick(&c.providers)
                        } else {
                            ctx.rng().shuffle(&mut candidates);
                            candidates[0]
                        };
                        let audits = por_make_audits(&shard, c.audits_per_shard, ctx.rng());
                        let pending_data = c.retry.is_active().then(|| Rc::clone(&shard));
                        let msg = StorageMsg::PutShard {
                            object,
                            index,
                            data: shard,
                        };
                        let size = msg.wire_size();
                        ctx.send(provider, msg, size);
                        ctx.metrics().incr("storage.repair_bytes_up", size);
                        ctx.metrics().incr("storage.repairs_completed", 1);
                        if let Some(place) = rec.shards.iter_mut().find(|s| s.index == index) {
                            place.provider = provider;
                            place.audits = audits;
                            place.alive = true;
                            place.acked = false;
                            place.pending_data = pending_data;
                        }
                    }
                }
            }
            Err(_) => {
                // Wait for more shards (corrupt metadata handled at timeout).
            }
        }
    }
}

impl Protocol for StorageNode {
    type Msg = StorageMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, StorageMsg>) {
        if let Role::Client(c) = &self.role {
            let interval = c.audit_interval;
            ctx.set_timer(interval, TAG_AUDIT_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StorageMsg>, from: NodeId, msg: StorageMsg) {
        match (&mut self.role, msg) {
            (
                Role::Provider(p),
                StorageMsg::PutShard {
                    object,
                    index,
                    data,
                },
            ) => {
                let keep = match p.strategy {
                    ProviderStrategy::Honest => true,
                    ProviderStrategy::DiscardAfterAck => false,
                    ProviderStrategy::PartialKeep(pct) => ctx.rng().chance(pct as f64 / 100.0),
                };
                if keep {
                    p.shards.insert((object, index), data);
                }
                let reply = StorageMsg::AckPut { object, index };
                let size = reply.wire_size();
                ctx.send(from, reply, size);
            }
            (Role::Provider(p), StorageMsg::GetShard { object, index, req }) => {
                let data = p.shards.get(&(object, index)).cloned();
                if let Some(d) = &data {
                    ctx.metrics()
                        .incr("storage.shard_bytes_served", d.len() as u64);
                }
                let reply = StorageMsg::ShardData { req, index, data };
                let size = reply.wire_size();
                ctx.send(from, reply, size);
            }
            (
                Role::Provider(p),
                StorageMsg::AuditChallenge {
                    object,
                    index,
                    nonce,
                    req,
                },
            ) => {
                let digest = p
                    .shards
                    .get(&(object, index))
                    .map(|d| por_respond(nonce, d));
                let reply = StorageMsg::AuditResponse { req, digest };
                let size = reply.wire_size();
                ctx.send(from, reply, size);
            }
            (Role::Client(c), StorageMsg::AckPut { object, index }) => {
                if let Some(rec) = c.objects.get_mut(&object) {
                    if let Some(p) = rec.shards.iter_mut().find(|s| s.index == index) {
                        p.acked = true;
                        p.pending_data = None;
                    }
                    // Complete any pending Put op once all acks are in.
                    if rec.shards.iter().all(|s| s.acked) {
                        let done: Vec<(u64, SimTime)> = c
                            .ops
                            .iter()
                            .filter_map(|(op, st)| match st {
                                OpState::Put {
                                    object: o, started, ..
                                } if *o == object => Some((*op, *started)),
                                _ => None,
                            })
                            .collect();
                        let n = rec.shards.len() as u32;
                        for (op, started) in done {
                            c.ops.remove(&op);
                            c.retriers.remove(&op);
                            ctx.metrics().incr("storage.put_ok", 1);
                            let took = ctx.now().since(started).secs_f64();
                            ctx.metrics().sample("storage.put_secs", took);
                            c.results
                                .insert(op, StorageResult::Stored { object, shards: n });
                        }
                    }
                }
            }
            (Role::Client(c), StorageMsg::ShardData { req, index, data }) => {
                if let Some(OpState::Get { collected, .. }) = c.ops.get_mut(&req) {
                    if let Some(d) = data {
                        if !collected.iter().any(|(i, _)| *i == index as usize) {
                            collected.push((index as usize, d));
                        }
                    }
                    self.try_complete_get(ctx, req);
                }
            }
            (Role::Client(c), StorageMsg::AuditResponse { req, digest }) => {
                if let Some(OpState::AuditWait {
                    object,
                    index,
                    expected,
                    done,
                }) = c.ops.get_mut(&req)
                {
                    if *done {
                        return;
                    }
                    *done = true;
                    let (object, index, expected) = (*object, *index, *expected);
                    let pass = digest.is_some_and(|d| por_verify(&expected, &d));
                    c.ops.remove(&req);
                    if pass {
                        ctx.metrics().incr("storage.audit_pass", 1);
                    } else {
                        ctx.metrics().incr("storage.audit_fail", 1);
                        self.mark_shard_dead(ctx, object, index);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StorageMsg>, tag: u64) {
        if tag == TAG_AUDIT_TICK {
            self.client_audit_round(ctx);
            return;
        }
        let Role::Client(c) = &mut self.role else {
            return;
        };
        // When a retry policy is armed, an incomplete op may owe a resend
        // round this tick; gather what it needs while `ops` is borrowed.
        let mut resend_put: Option<Hash256> = None;
        let mut resend_get: Option<(Hash256, Vec<usize>)> = None;
        match c.ops.get_mut(&tag) {
            Some(OpState::Put {
                object,
                deadline_ticks,
                ..
            }) => {
                let object = *object;
                *deadline_ticks -= 1;
                if *deadline_ticks == 0 {
                    c.ops.remove(&tag);
                    ctx.metrics().incr("storage.put_timeout", 1);
                    if c.retry.is_active() {
                        c.retriers.remove(&tag);
                        ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
                        ctx.trace_point("retry.gave_up", 1.0);
                    }
                    let acked = c
                        .objects
                        .get(&object)
                        .map_or(0, |r| r.shards.iter().filter(|s| s.acked).count() as u32);
                    // Partial placement can still be durable; report what we got.
                    let result = if acked > 0 {
                        StorageResult::Stored {
                            object,
                            shards: acked,
                        }
                    } else {
                        StorageResult::PutFailed
                    };
                    c.results.insert(tag, result);
                } else {
                    ctx.set_timer(OP_TICK, tag);
                    if c.retry.is_active() {
                        resend_put = Some(object);
                    }
                }
            }
            Some(OpState::Get {
                object,
                collected,
                deadline_ticks,
                ..
            }) => {
                let object = *object;
                *deadline_ticks -= 1;
                if *deadline_ticks == 0 {
                    if let Some(OpState::Get { repair_index, .. }) = c.ops.remove(&tag) {
                        ctx.metrics().incr("storage.get_timeout", 1);
                        if c.retry.is_active() {
                            c.retriers.remove(&tag);
                            ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
                            ctx.trace_point("retry.gave_up", 1.0);
                        }
                        if repair_index.is_none() {
                            c.results.insert(tag, StorageResult::Unavailable);
                        }
                    }
                } else {
                    ctx.set_timer(OP_TICK, tag);
                    if c.retry.is_active() {
                        resend_get = Some((object, collected.iter().map(|(i, _)| *i).collect()));
                    }
                }
            }
            Some(OpState::AuditWait {
                object,
                index,
                done,
                ..
            }) => {
                // Timer fired before a response arrived: audit timed out.
                if !*done {
                    let (object, index) = (*object, *index);
                    c.ops.remove(&tag);
                    ctx.metrics().incr("storage.audit_timeout", 1);
                    self.mark_shard_dead(ctx, object, index);
                } else {
                    c.ops.remove(&tag);
                }
            }
            None => {}
        }
        // Retry pacing: count down to the next resend round; when it is due,
        // re-send only the outstanding shards and draw the next backoff.
        // (Re-borrow: the audit arm above needed `self` for mark_shard_dead.)
        let Role::Client(c) = &mut self.role else {
            return;
        };
        let due = match c.retriers.get_mut(&tag) {
            Some((_, ticks)) if *ticks > 1 => {
                *ticks -= 1;
                false
            }
            Some(_) => true,
            None => false,
        };
        if !due {
            return;
        }
        let mut sent = false;
        if let Some(object) = resend_put {
            if let Some(rec) = c.objects.get(&object) {
                for s in rec.shards.iter().filter(|s| !s.acked) {
                    if let Some(data) = &s.pending_data {
                        let msg = StorageMsg::PutShard {
                            object,
                            index: s.index,
                            data: Rc::clone(data),
                        };
                        let size = msg.wire_size();
                        ctx.send(s.provider, msg, size);
                        sent = true;
                    }
                }
            }
        } else if let Some((object, have)) = resend_get {
            if let Some(rec) = c.objects.get(&object) {
                for s in rec
                    .shards
                    .iter()
                    .filter(|s| s.alive && !have.contains(&(s.index as usize)))
                {
                    let msg = StorageMsg::GetShard {
                        object,
                        index: s.index,
                        req: tag,
                    };
                    let size = msg.wire_size();
                    ctx.send(s.provider, msg, size);
                    sent = true;
                }
            }
        } else {
            // The op completed or timed out under us; drop the stale pacing.
            c.retriers.remove(&tag);
            return;
        }
        if sent {
            ctx.metrics().incr(CTR_RETRY_ATTEMPTS, 1);
            ctx.trace_point("retry.attempt", 1.0);
        }
        let (retrier, ticks) = c.retriers.get_mut(&tag).expect("due entry exists");
        match retrier.next_backoff(ctx.rng()) {
            Some(d) => *ticks = ticks_for(d),
            None => {
                // Budget exhausted: no further rounds; the op deadline
                // decides success or `retry.gave_up`.
                c.retriers.remove(&tag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_sim::{DeviceClass, Simulation};

    fn build(
        n_providers: usize,
        strategy: impl Fn(usize) -> ProviderStrategy,
        seed: u64,
    ) -> (Simulation<StorageNode>, NodeId, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let mut providers = Vec::new();
        for i in 0..n_providers {
            providers.push(sim.add_node(
                StorageNode::provider(strategy(i)),
                DeviceClass::PersonalComputer,
            ));
        }
        let client = sim.add_node(
            StorageNode::client(providers.clone(), SimDuration::from_secs(30)),
            DeviceClass::PersonalComputer,
        );
        (sim, client, providers)
    }

    #[test]
    fn put_get_round_trip() {
        let (mut sim, client, _) = build(8, |_| ProviderStrategy::Honest, 1);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let (put_op, object) = sim
            .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(
            sim.node_mut(client).take_result(put_op),
            Some(StorageResult::Stored { object, shards: 6 })
        );
        let get_op = sim
            .with_ctx(client, |n, ctx| n.start_get(ctx, object))
            .unwrap();
        sim.run_for(SimDuration::from_secs(120));
        match sim.node_mut(client).take_result(get_op) {
            Some(StorageResult::Retrieved(got)) => assert_eq!(got, data),
            other => panic!("get failed: {other:?}"),
        }
    }

    #[test]
    fn survives_m_provider_failures() {
        let (mut sim, client, providers) = build(6, |_| ProviderStrategy::Honest, 2);
        let data = vec![7u8; 30_000];
        let (_, object) = sim
            .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        // Kill two providers (up to m=2 shard losses tolerated) and disable
        // repair so this tests pure redundancy.
        sim.node_mut(client).set_repair(false);
        sim.kill(providers[0]);
        sim.kill(providers[1]);
        let get_op = sim
            .with_ctx(client, |n, ctx| n.start_get(ctx, object))
            .unwrap();
        sim.run_for(SimDuration::from_secs(200));
        match sim.node_mut(client).take_result(get_op) {
            Some(StorageResult::Retrieved(got)) => assert_eq!(got, data),
            other => panic!("should survive m failures: {other:?}"),
        }
    }

    #[test]
    fn audits_detect_discarding_provider() {
        // One dishonest provider among honest ones.
        let (mut sim, client, _) = build(
            6,
            |i| {
                if i == 0 {
                    ProviderStrategy::DiscardAfterAck
                } else {
                    ProviderStrategy::Honest
                }
            },
            3,
        );
        let data = vec![9u8; 20_000];
        sim.with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
            .unwrap();
        // Run long enough for several audit rounds.
        sim.run_for(SimDuration::from_mins(10));
        assert!(
            sim.metrics().counter("storage.audit_fail") >= 1,
            "discarder should fail an audit"
        );
        assert!(sim.metrics().counter("storage.audit_pass") >= 1);
    }

    #[test]
    fn repair_restores_redundancy_after_failure() {
        let (mut sim, client, providers) = build(8, |_| ProviderStrategy::Honest, 4);
        let data = vec![3u8; 40_000];
        let (_, object) = sim
            .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
            .unwrap();
        sim.run_for(SimDuration::from_secs(60));
        assert_eq!(sim.node(client).live_shards(&object), 6);
        sim.kill(providers[0]);
        // Audits mark dead shards; repair re-encodes and re-places.
        sim.run_for(SimDuration::from_mins(20));
        assert!(
            sim.metrics().counter("storage.repairs_completed") >= 1,
            "repair should run"
        );
        assert_eq!(
            sim.node(client).live_shards(&object),
            6,
            "redundancy restored"
        );
        // The full object is still retrievable.
        let get_op = sim
            .with_ctx(client, |n, ctx| n.start_get(ctx, object))
            .unwrap();
        sim.run_for(SimDuration::from_secs(200));
        match sim.node_mut(client).take_result(get_op) {
            Some(StorageResult::Retrieved(got)) => assert_eq!(got, data),
            other => panic!("post-repair get failed: {other:?}"),
        }
    }

    #[test]
    fn get_unknown_object_is_unavailable() {
        let (mut sim, client, _) = build(3, |_| ProviderStrategy::Honest, 5);
        let op = sim
            .with_ctx(client, |n, ctx| n.start_get(ctx, sha256(b"nope")))
            .unwrap();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(
            sim.node_mut(client).take_result(op),
            Some(StorageResult::Unavailable)
        );
    }

    #[test]
    fn all_providers_dead_get_times_out() {
        let (mut sim, client, providers) = build(4, |_| ProviderStrategy::Honest, 6);
        let data = vec![1u8; 10_000];
        let (_, object) = sim
            .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 2, 1))
            .unwrap();
        sim.run_for(SimDuration::from_secs(30));
        sim.node_mut(client).set_repair(false);
        for p in providers {
            sim.kill(p);
        }
        let op = sim
            .with_ctx(client, |n, ctx| n.start_get(ctx, object))
            .unwrap();
        sim.run_for(SimDuration::from_mins(5));
        assert_eq!(
            sim.node_mut(client).take_result(op),
            Some(StorageResult::Unavailable)
        );
    }

    #[test]
    fn retrying_client_resends_lost_shards_and_stays_dormant_by_default() {
        use agora_sim::Jitter;
        let run = |retry: RetryPolicy| {
            let mut sim = Simulation::new(77);
            let mut providers = Vec::new();
            for _ in 0..8 {
                providers.push(sim.add_node(
                    StorageNode::provider(ProviderStrategy::Honest),
                    DeviceClass::PersonalComputer,
                ));
            }
            let client = sim.add_node(
                StorageNode::client_with_retry(
                    providers.clone(),
                    SimDuration::from_secs(600),
                    retry,
                ),
                DeviceClass::PersonalComputer,
            );
            sim.set_loss_rate(0.25);
            let data = vec![9u8; 20_000];
            let (put_op, _) = sim
                .with_ctx(client, |n, ctx| n.start_put(ctx, &data, 4, 2))
                .unwrap();
            sim.run_for(SimDuration::from_secs(150));
            let shards = match sim.node_mut(client).take_result(put_op) {
                Some(StorageResult::Stored { shards, .. }) => shards,
                _ => 0,
            };
            (shards, sim.metrics().counter(CTR_RETRY_ATTEMPTS))
        };
        let policy = RetryPolicy {
            base: SimDuration::from_secs(1),
            factor: 2.0,
            cap: SimDuration::from_secs(4),
            max_attempts: 8,
            jitter: Jitter::Decorrelated,
            hedge_after: None,
        };
        let (shards_retry, attempts_retry) = run(policy);
        assert_eq!(shards_retry, 6, "resends should complete the placement");
        assert!(attempts_retry >= 1, "resend rounds must be counted");
        let (shards_plain, attempts_plain) = run(RetryPolicy::none());
        assert_eq!(attempts_plain, 0, "dormant by default");
        assert!(
            shards_plain < 6,
            "under 25% loss the one-shot put should lose shards"
        );
    }
}

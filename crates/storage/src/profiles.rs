//! The seven storage systems of the paper's Table 2, as live configurations.
//!
//! Each surveyed project is represented by the *mechanism class* the paper
//! attributes to it: how it uses a blockchain, how it incentivizes storage,
//! which proof scheme audits providers, and how it spreads data. The Table 2
//! harness prints this registry and then exercises each profile's mechanisms
//! end-to-end, so the table is generated from running code, not a string
//! constant.

use crate::contract::ProofScheme;
use crate::incentives::IncentiveScheme;

/// How a system uses a blockchain (Table 2, column "Blockchain Usage").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockchainUsage {
    /// No blockchain at all.
    None,
    /// Contracts are recorded on-chain (Sia).
    ContractLedger,
    /// A token settles payments (Storj's storjcoin, Filecoin's filecoin).
    PaymentToken,
    /// Name resolution + payments + availability insurance (Swarm/Ethereum).
    FullPlatform,
    /// Binds name, public key and zone-file hash only (Blockstack).
    NameBinding,
}

impl BlockchainUsage {
    /// Table 2 cell text.
    pub fn label(self) -> &'static str {
        match self {
            BlockchainUsage::None => "None",
            BlockchainUsage::ContractLedger => "Blockchain-based contract",
            BlockchainUsage::PaymentToken => "Facilitate payments",
            BlockchainUsage::FullPlatform => {
                "Domain name resolution, payments, content availability insurance"
            }
            BlockchainUsage::NameBinding => "Bind domain name, public key and zone file hash",
        }
    }
}

/// Redundancy strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Redundancy {
    /// Full-copy replication with the given replica count.
    Replication(u8),
    /// Reed–Solomon with k data + m parity shards.
    ErasureCode {
        /// Data shards.
        k: u8,
        /// Parity shards.
        m: u8,
    },
    /// Popularity-driven caching (visitors seed what they fetch).
    SwarmCaching,
}

impl Redundancy {
    /// Storage overhead factor relative to the raw data.
    pub fn overhead(self) -> f64 {
        match self {
            Redundancy::Replication(r) => r as f64,
            Redundancy::ErasureCode { k, m } => (k as u16 + m as u16) as f64 / k as f64,
            Redundancy::SwarmCaching => 1.0, // demand-driven; no fixed factor
        }
    }
}

/// One storage system profile (a row of Table 2 plus the knobs that make it
/// runnable in the simulator).
#[derive(Clone, Copy, Debug)]
pub struct StorageProfile {
    /// System name as in the paper.
    pub name: &'static str,
    /// Blockchain usage column.
    pub blockchain: BlockchainUsage,
    /// Incentive scheme column.
    pub incentive: IncentiveScheme,
    /// Audit/proof regime used against providers.
    pub proof: ProofScheme,
    /// Redundancy strategy.
    pub redundancy: Redundancy,
}

/// The surveyed systems, in Table 2's row order.
pub fn table2_profiles() -> [StorageProfile; 7] {
    [
        StorageProfile {
            name: "IPFS",
            blockchain: BlockchainUsage::None,
            incentive: IncentiveScheme::BitswapLedger,
            proof: ProofScheme::None,
            redundancy: Redundancy::SwarmCaching,
        },
        StorageProfile {
            name: "MaidSafe",
            blockchain: BlockchainUsage::None,
            incentive: IncentiveScheme::ProofOfResource,
            proof: ProofScheme::ProofOfRetrievability,
            redundancy: Redundancy::Replication(4),
        },
        StorageProfile {
            name: "Sia",
            blockchain: BlockchainUsage::ContractLedger,
            incentive: IncentiveScheme::ProofOfStorage,
            proof: ProofScheme::ProofOfStorage,
            redundancy: Redundancy::ErasureCode { k: 10, m: 20 },
        },
        StorageProfile {
            name: "Storj",
            blockchain: BlockchainUsage::PaymentToken,
            incentive: IncentiveScheme::ProofOfRetrievability,
            proof: ProofScheme::ProofOfRetrievability,
            redundancy: Redundancy::ErasureCode { k: 20, m: 20 },
        },
        StorageProfile {
            name: "Swarm",
            blockchain: BlockchainUsage::FullPlatform,
            incentive: IncentiveScheme::Swear,
            proof: ProofScheme::ProofOfStorage,
            redundancy: Redundancy::SwarmCaching,
        },
        StorageProfile {
            name: "Filecoin",
            blockchain: BlockchainUsage::PaymentToken,
            incentive: IncentiveScheme::ProofOfReplication,
            proof: ProofScheme::ProofOfReplication,
            redundancy: Redundancy::Replication(3),
        },
        StorageProfile {
            name: "Blockstack",
            blockchain: BlockchainUsage::NameBinding,
            incentive: IncentiveScheme::None,
            proof: ProofScheme::None,
            redundancy: Redundancy::Replication(1), // delegates to a cloud store
        },
    ]
}

/// Render Table 2 from the live registry.
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<11} | {:<55} | {}\n",
        "System", "Blockchain Usage", "Incentive Scheme"
    ));
    out.push_str(&format!("{}\n", "-".repeat(110)));
    for p in table2_profiles() {
        out.push_str(&format!(
            "{:<11} | {:<55} | {}\n",
            p.name,
            p.blockchain.label(),
            p.incentive.label()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_in_paper_order() {
        let p = table2_profiles();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0].name, "IPFS");
        assert_eq!(p[2].name, "Sia");
        assert_eq!(p[6].name, "Blockstack");
    }

    #[test]
    fn paper_cells_match() {
        let p = table2_profiles();
        // IPFS and MaidSafe are the two no-blockchain systems (§3.3: "with
        // the exception of IPFS and MaidSafe").
        assert_eq!(p[0].blockchain, BlockchainUsage::None);
        assert_eq!(p[1].blockchain, BlockchainUsage::None);
        assert!(p[2..6]
            .iter()
            .all(|x| x.blockchain != BlockchainUsage::None));
        assert_eq!(p[6].incentive, IncentiveScheme::None);
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let t = render_table2();
        for p in table2_profiles() {
            assert!(t.contains(p.name), "missing {}", p.name);
            assert!(t.contains(p.incentive.label()));
        }
        assert!(t.contains("Bitswap ledgers"));
        assert!(t.contains("SWEAR"));
    }

    #[test]
    fn redundancy_overheads() {
        assert_eq!(Redundancy::Replication(3).overhead(), 3.0);
        assert_eq!(Redundancy::ErasureCode { k: 10, m: 20 }.overhead(), 3.0);
        assert_eq!(Redundancy::SwarmCaching.overhead(), 1.0);
        // Sia-style erasure coding gives 3× overhead but tolerates 20 losses;
        // 3× replication tolerates only 2 — the design-space point of E6.
    }
}

//! Storage proof schemes: proof-of-storage, proof-of-retrievability,
//! proof-of-replication, and proof-of-spacetime.
//!
//! Table 2 of the paper attributes one of these to each surveyed system;
//! this module implements the mechanism class of each:
//!
//! * **Proof-of-storage** (Sia-style): the verifier knows the object's
//!   Merkle root; the prover returns a challenged chunk plus its inclusion
//!   proof. Anyone with the root can verify; response size = chunk size.
//! * **Proof-of-retrievability** (Storj-style): at upload time the owner
//!   precomputes audit pairs `(nonce, H(nonce ‖ data))`; each challenge
//!   reveals a fresh nonce and expects the matching digest. Constant-size
//!   responses, but only the owner (who holds the pairs) can verify, and
//!   audits are finite.
//! * **Proof-of-replication** (Filecoin-style): each replica is *sealed* by
//!   a deliberately slow, replica-id-keyed sequential transform; challenges
//!   sample sealed chunks against the sealed commitment under a response
//!   deadline shorter than sealing time. This defeats Sybil (each claimed
//!   replica needs distinct sealed bytes), outsourcing (fetching another
//!   holder's *unsealed* data doesn't answer sealed challenges in time) and
//!   generation attacks (re-sealing on demand exceeds the deadline).
//! * **Proof-of-spacetime**: proof-of-replication repeated over scheduled
//!   windows, demonstrating continuous storage over an interval.

use agora_crypto::{sha256_concat, Hash256, MerkleProof};
use agora_sim::{SimDuration, SimRng};

use crate::chunk::{Chunk, Manifest};

// ---------------------------------------------------------------------------
// Proof-of-storage (Merkle challenge)
// ---------------------------------------------------------------------------

/// A proof-of-storage challenge: produce chunk `index` of `object`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosChallenge {
    /// Object id (Merkle root over chunk ids).
    pub object: Hash256,
    /// Challenged chunk index.
    pub index: u32,
    /// Anti-replay nonce.
    pub nonce: u64,
}

/// The prover's response: the chunk and its membership proof.
#[derive(Clone, Debug)]
pub struct PosResponse {
    /// Echoed nonce.
    pub nonce: u64,
    /// The challenged chunk.
    pub chunk: Chunk,
    /// Inclusion proof of the chunk in the object.
    pub proof: MerkleProof,
}

impl PosResponse {
    /// Build a response from locally stored data.
    pub fn build(
        challenge: &PosChallenge,
        manifest: &Manifest,
        chunk: Chunk,
    ) -> Option<PosResponse> {
        let proof = manifest.prove_chunk(challenge.index as usize)?;
        Some(PosResponse {
            nonce: challenge.nonce,
            chunk,
            proof,
        })
    }

    /// Verify against the challenge. Needs only the object id.
    pub fn verify(&self, challenge: &PosChallenge) -> bool {
        self.nonce == challenge.nonce
            && Manifest::verify_chunk(&challenge.object, &self.chunk, &self.proof)
    }

    /// Wire size (the dominant cost of this scheme).
    pub fn wire_size(&self) -> u64 {
        8 + 32 + self.chunk.data.len() as u64 + self.proof.wire_size()
    }
}

// ---------------------------------------------------------------------------
// Proof-of-retrievability (precomputed audits)
// ---------------------------------------------------------------------------

/// One precomputed audit pair, kept secret by the data owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Audit {
    /// The nonce revealed at challenge time.
    pub nonce: u64,
    /// Expected digest `H(nonce ‖ data)`.
    pub expected: Hash256,
}

/// The digest a prover holding `data` computes for a revealed nonce.
pub fn por_respond(nonce: u64, data: &[u8]) -> Hash256 {
    sha256_concat(&[b"por", &nonce.to_be_bytes(), data])
}

/// Precompute `n` audit pairs over `data`.
pub fn por_make_audits(data: &[u8], n: usize, rng: &mut SimRng) -> Vec<Audit> {
    (0..n)
        .map(|_| {
            let nonce = rng.next_u64();
            Audit {
                nonce,
                expected: por_respond(nonce, data),
            }
        })
        .collect()
}

/// Verify a response against a (not yet used) audit pair.
pub fn por_verify(audit: &Audit, response: &Hash256) -> bool {
    &audit.expected == response
}

// ---------------------------------------------------------------------------
// Proof-of-replication (sealing)
// ---------------------------------------------------------------------------

/// Sealing parameters.
#[derive(Clone, Debug)]
pub struct SealParams {
    /// Sealed bytes produced per simulated second (deliberately slow).
    pub seal_throughput_bps: u64,
    /// Deadline for answering a replication challenge. Must be far below the
    /// time to seal a shard for the scheme to be sound.
    pub response_deadline: SimDuration,
    /// Sealed-chunk size used for the sealed commitment tree.
    pub sealed_chunk_size: usize,
}

impl Default for SealParams {
    fn default() -> SealParams {
        SealParams {
            seal_throughput_bps: 1_000_000, // 1 MB/s: a 64 MB shard takes ~64 s
            response_deadline: SimDuration::from_secs(5),
            sealed_chunk_size: 4096,
        }
    }
}

impl SealParams {
    /// How long sealing `len` bytes takes in simulated time.
    pub fn seal_time(&self, len: usize) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.seal_throughput_bps.max(1) as f64)
    }
}

/// Seal `data` for a specific replica id: a sequential keyed chain, so each
/// replica's sealed bytes are unique and cannot be deduplicated or produced
/// without doing the (slow) work for that id.
pub fn seal(data: &[u8], replica_id: &Hash256) -> Vec<u8> {
    let mut sealed = Vec::with_capacity(data.len());
    let mut prev = *replica_id;
    for (i, block) in data.chunks(32).enumerate() {
        let key = sha256_concat(&[
            b"seal",
            replica_id.as_bytes(),
            &(i as u64).to_be_bytes(),
            prev.as_bytes(),
        ]);
        let mut out = [0u8; 32];
        for (j, &b) in block.iter().enumerate() {
            out[j] = b ^ key.as_bytes()[j];
        }
        sealed.extend_from_slice(&out[..block.len()]);
        prev = sha256_concat(&[&out[..block.len()]]);
    }
    sealed
}

/// Unseal (the transform is an XOR stream keyed by the chain over *sealed*
/// blocks, so decoding replays the same chain).
pub fn unseal(sealed: &[u8], replica_id: &Hash256) -> Vec<u8> {
    let mut data = Vec::with_capacity(sealed.len());
    let mut prev = *replica_id;
    for (i, block) in sealed.chunks(32).enumerate() {
        let key = sha256_concat(&[
            b"seal",
            replica_id.as_bytes(),
            &(i as u64).to_be_bytes(),
            prev.as_bytes(),
        ]);
        for (j, &b) in block.iter().enumerate() {
            data.push(b ^ key.as_bytes()[j]);
        }
        prev = sha256_concat(&[block]);
    }
    data
}

/// Commitment to a sealed replica: manifest over the sealed bytes.
pub fn sealed_commitment(sealed: &[u8], params: &SealParams) -> Manifest {
    Manifest::build(sealed, params.sealed_chunk_size).0
}

/// A replication challenge: prove possession of sealed chunk `index`.
#[derive(Clone, Copy, Debug)]
pub struct PorepChallenge {
    /// The sealed commitment root being challenged.
    pub commitment: Hash256,
    /// Sealed-chunk index.
    pub index: u32,
    /// Anti-replay nonce.
    pub nonce: u64,
    /// Simulated deadline (absolute) for the response.
    pub deadline_micros: u64,
}

/// Response: the sealed chunk and its proof (same shape as PoS but against
/// the *sealed* tree).
pub type PorepResponse = PosResponse;

/// Verify a replication response, including the timing check.
pub fn porep_verify(
    challenge: &PorepChallenge,
    response: &PorepResponse,
    responded_at_micros: u64,
) -> bool {
    responded_at_micros <= challenge.deadline_micros
        && response.nonce == challenge.nonce
        && Manifest::verify_chunk(&challenge.commitment, &response.chunk, &response.proof)
}

// ---------------------------------------------------------------------------
// Proof-of-spacetime
// ---------------------------------------------------------------------------

/// A proof-of-spacetime audit trail: one bit per scheduled window.
#[derive(Clone, Debug, Default)]
pub struct SpacetimeRecord {
    windows: Vec<bool>,
}

impl SpacetimeRecord {
    /// Record the outcome of one window's replication challenge.
    pub fn record(&mut self, passed: bool) {
        self.windows.push(passed);
    }

    /// Number of windows audited so far.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Fraction of windows passed.
    pub fn uptime_fraction(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().filter(|&&b| b).count() as f64 / self.windows.len() as f64
    }

    /// Whether the provider satisfied the contract (all windows passed, with
    /// up to `grace` misses allowed).
    pub fn satisfied(&self, grace: usize) -> bool {
        self.windows.iter().filter(|&&b| !b).count() <= grace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_crypto::sha256;

    fn object(len: usize) -> (Manifest, Vec<Chunk>, Vec<u8>) {
        let data: Vec<u8> = (0..len as u32).map(|i| (i % 253) as u8).collect();
        let (m, c) = Manifest::build(&data, 1024);
        (m, c, data)
    }

    #[test]
    fn pos_round_trip() {
        let (manifest, chunks, _) = object(5000);
        let ch = PosChallenge {
            object: manifest.object_id,
            index: 3,
            nonce: 99,
        };
        let resp = PosResponse::build(&ch, &manifest, chunks[3].clone()).unwrap();
        assert!(resp.verify(&ch));
        assert!(resp.wire_size() > 1024);
    }

    #[test]
    fn pos_wrong_chunk_or_nonce_fails() {
        let (manifest, chunks, _) = object(5000);
        let ch = PosChallenge {
            object: manifest.object_id,
            index: 3,
            nonce: 99,
        };
        let resp = PosResponse::build(&ch, &manifest, chunks[2].clone()).unwrap();
        assert!(!resp.verify(&ch), "wrong chunk data");
        let mut resp2 = PosResponse::build(&ch, &manifest, chunks[3].clone()).unwrap();
        resp2.nonce = 100;
        assert!(!resp2.verify(&ch), "replayed nonce");
    }

    #[test]
    fn por_audits_work_once_each() {
        let mut rng = SimRng::new(1);
        let data = vec![5u8; 10_000];
        let audits = por_make_audits(&data, 10, &mut rng);
        assert_eq!(audits.len(), 10);
        for a in &audits {
            assert!(por_verify(a, &por_respond(a.nonce, &data)));
        }
        // A prover who dropped the data cannot answer.
        let wrong = por_respond(audits[0].nonce, &data[..9_999]);
        assert!(!por_verify(&audits[0], &wrong));
    }

    #[test]
    fn seal_unseal_round_trip() {
        let id = sha256(b"replica-1");
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let sealed = seal(&data, &id);
        assert_eq!(sealed.len(), data.len());
        assert_ne!(sealed, data);
        assert_eq!(unseal(&sealed, &id), data);
    }

    #[test]
    fn sealed_replicas_are_unique_per_id() {
        let data = vec![9u8; 4096];
        let s1 = seal(&data, &sha256(b"replica-1"));
        let s2 = seal(&data, &sha256(b"replica-2"));
        assert_ne!(s1, s2, "replicas must not be dedupable");
        // Unsealing with the wrong id yields garbage.
        assert_ne!(unseal(&s1, &sha256(b"replica-2")), data);
    }

    #[test]
    fn porep_challenge_round_trip_and_deadline() {
        let params = SealParams::default();
        let data = vec![3u8; 20_000];
        let id = sha256(b"replica-7");
        let sealed = seal(&data, &id);
        let commitment = sealed_commitment(&sealed, &params);
        let (_, sealed_chunks) = Manifest::build(&sealed, params.sealed_chunk_size);
        let ch = PorepChallenge {
            commitment: commitment.object_id,
            index: 2,
            nonce: 7,
            deadline_micros: 1_000_000,
        };
        let resp = PosResponse::build(
            &PosChallenge {
                object: ch.commitment,
                index: ch.index,
                nonce: ch.nonce,
            },
            &commitment,
            sealed_chunks[2].clone(),
        )
        .unwrap();
        assert!(porep_verify(&ch, &resp, 500_000), "in time");
        assert!(!porep_verify(&ch, &resp, 2_000_000), "late response fails");
    }

    #[test]
    fn seal_time_scales_with_length() {
        let p = SealParams::default();
        assert!(p.seal_time(64_000_000) > SimDuration::from_secs(60));
        assert!(p.seal_time(64_000_000) > p.response_deadline * 10);
        assert_eq!(p.seal_time(0), SimDuration::ZERO);
    }

    #[test]
    fn spacetime_record_tracks_windows() {
        let mut rec = SpacetimeRecord::default();
        assert_eq!(rec.uptime_fraction(), 0.0);
        for i in 0..10 {
            rec.record(i != 4);
        }
        assert_eq!(rec.window_count(), 10);
        assert!((rec.uptime_fraction() - 0.9).abs() < 1e-9);
        assert!(rec.satisfied(1));
        assert!(!rec.satisfied(0));
    }

    #[test]
    fn unaligned_seal_lengths() {
        let id = sha256(b"r");
        for len in [1usize, 31, 32, 33, 63, 65] {
            let data: Vec<u8> = (0..len as u32).map(|i| i as u8).collect();
            assert_eq!(unseal(&seal(&data, &id), &id), data, "len {len}");
        }
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for the storage substrate.

use agora_crypto::sha256;
use agora_sim::SimRng;
use agora_storage::{
    por_make_audits, por_respond, por_verify, seal, unseal, Chunk, Manifest, MarketSpec,
    ProofScheme, ReedSolomon, SpacetimeRecord, StorageContract, TokenBank,
};
use proptest::prelude::*;

proptest! {
    /// RS(k, m) reconstructs from *any* k-subset of shards (randomly chosen
    /// per case), for arbitrary data.
    #[test]
    fn rs_reconstructs_from_random_subsets(
        data in proptest::collection::vec(any::<u8>(), 1..3000),
        k in 1usize..7,
        m in 0usize..6,
        subset_seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).expect("valid");
        let shards = rs.encode(&data);
        let mut rng = SimRng::new(subset_seed);
        let picks = rng.sample_indices(k + m, k);
        let avail: Vec<(usize, Vec<u8>)> = picks.iter().map(|&i| (i, shards[i].clone())).collect();
        prop_assert_eq!(rs.reconstruct(&avail, data.len()).expect("any k suffice"), data);
    }

    /// Encode∘decode is the identity at arbitrary (data length, k, m)
    /// combinations — i.e. arbitrary shard sizes, including the k ∤ len
    /// padding cases and single-byte shards — via the all-data fast path.
    #[test]
    fn rs_encode_decode_roundtrip_at_random_shard_sizes(
        data in proptest::collection::vec(any::<u8>(), 1..5000),
        k in 1usize..10,
        m in 0usize..6,
    ) {
        let rs = ReedSolomon::new(k, m).expect("valid");
        let shards = rs.encode(&data);
        prop_assert_eq!(shards.len(), k + m);
        let shard_len = data.len().div_ceil(k).max(1);
        for s in &shards {
            prop_assert_eq!(s.len(), shard_len);
        }
        let avail: Vec<(usize, Vec<u8>)> = (0..k).map(|i| (i, shards[i].clone())).collect();
        prop_assert_eq!(rs.reconstruct(&avail, data.len()).expect("all data shards"), data);
    }

    /// The market's challenge oracle is a pure function of (spec, seed):
    /// recompiling yields the identical schedule, sorted by open time, with
    /// exactly rounds × objects challenges all targeting valid slots.
    #[test]
    fn market_oracle_is_deterministic_sorted_and_in_range(
        seed in any::<u64>(),
        objects in 1usize..12,
        k in 1usize..9,
        m in 1usize..5,
    ) {
        let spec = MarketSpec { objects, k, m, ..MarketSpec::default() };
        let a = spec.compile_oracle(seed);
        let b = spec.compile_oracle(seed);
        prop_assert_eq!(a.challenges(), b.challenges());
        prop_assert_eq!(a.len(), spec.rounds() as usize * objects);
        let mut last = None;
        for c in a.challenges() {
            prop_assert!((c.object as usize) < objects);
            prop_assert!((c.slot as usize) < k + m);
            if let Some(prev) = last {
                prop_assert!(c.at >= prev);
            }
            last = Some(c.at);
        }
    }

    /// Fewer than k shards can never reconstruct.
    #[test]
    fn rs_under_k_always_fails(
        data in proptest::collection::vec(any::<u8>(), 1..500),
        k in 2usize..6,
        m in 1usize..5,
    ) {
        let rs = ReedSolomon::new(k, m).expect("valid");
        let shards = rs.encode(&data);
        let avail: Vec<(usize, Vec<u8>)> = (0..k - 1).map(|i| (i, shards[i].clone())).collect();
        prop_assert!(rs.reconstruct(&avail, data.len()).is_err());
    }

    /// Chunk/manifest round-trip for arbitrary data and chunk sizes; every
    /// chunk proof verifies; any flipped bit in any chunk is caught.
    #[test]
    fn manifest_integrity(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        chunk_size in 1usize..700,
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let (manifest, chunks) = Manifest::build(&data, chunk_size);
        prop_assert_eq!(manifest.assemble(&chunks).expect("round trip"), data.clone());
        for (i, c) in chunks.iter().enumerate() {
            let p = manifest.prove_chunk(i).expect("in range");
            prop_assert!(Manifest::verify_chunk(&manifest.object_id, c, &p));
        }
        if !data.is_empty() {
            let victim = flip_byte.index(chunks.len());
            let mut evil = chunks[victim].clone();
            if !evil.data.is_empty() {
                evil.data[0] ^= 1 << flip_bit;
                let p = manifest.prove_chunk(victim).expect("in range");
                prop_assert!(!Manifest::verify_chunk(&manifest.object_id, &evil, &p));
                // Re-addressing doesn't help either.
                let readdressed = Chunk::new(evil.data);
                prop_assert!(!Manifest::verify_chunk(&manifest.object_id, &readdressed, &p));
            }
        }
    }

    /// Sealing round-trips and is replica-unique for arbitrary inputs.
    #[test]
    fn sealing_properties(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        id_a in any::<u64>(),
        id_b in any::<u64>(),
    ) {
        let a = sha256(&id_a.to_be_bytes());
        let sealed = seal(&data, &a);
        prop_assert_eq!(sealed.len(), data.len());
        prop_assert_eq!(unseal(&sealed, &a), data.clone());
        if id_a != id_b && data.len() >= 8 {
            let b = sha256(&id_b.to_be_bytes());
            prop_assert_ne!(seal(&data, &b), sealed);
        }
    }

    /// PoR audits verify only with the exact data.
    #[test]
    fn por_binds_exact_data(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        seed in any::<u64>(),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut rng = SimRng::new(seed);
        let audits = por_make_audits(&data, 3, &mut rng);
        for a in &audits {
            prop_assert!(por_verify(a, &por_respond(a.nonce, &data)));
        }
        let mut evil = data.clone();
        evil[flip.index(data.len())] ^= 0x01;
        prop_assert!(!por_verify(&audits[0], &por_respond(audits[0].nonce, &evil)));
    }

    /// Contract codec round-trips arbitrary field values, and settlement is
    /// always zero-sum.
    #[test]
    fn contract_roundtrip_and_zero_sum_settlement(
        size in any::<u64>(),
        price in 0u64..10_000,
        windows in 1u32..64,
        collateral in 0u64..10_000,
        outcomes in proptest::collection::vec(any::<bool>(), 1..64),
        grace in 0usize..4,
    ) {
        let c = StorageContract {
            client: sha256(b"c"),
            provider: sha256(b"p"),
            object: sha256(b"o"),
            size_bytes: size,
            price_per_window: price,
            windows,
            collateral,
            proof: ProofScheme::ProofOfReplication,
        };
        prop_assert_eq!(StorageContract::decode(&c.encode()).expect("round trip"), c.clone());
        let mut rec = SpacetimeRecord::default();
        for &o in &outcomes {
            rec.record(o);
        }
        let mut bank = TokenBank::new();
        let (earned, slashed) = c.settle(&rec, grace, &mut bank);
        prop_assert!(earned <= c.max_payout());
        prop_assert!(slashed == 0 || slashed == collateral);
        prop_assert_eq!(bank.total(), 0, "settlement must be zero-sum");
    }

    /// Arbitrary byte strings never decode into a contract silently wrong:
    /// decode(encode(c)) == c and decode of mutated bytes is Err or differs.
    #[test]
    fn contract_decode_rejects_or_differs(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // Must never panic.
        let _ = StorageContract::decode(&bytes);
    }
}

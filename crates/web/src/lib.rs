//! # agora-web — hostless web applications
//!
//! §3.4's "novel browser-based web architecture in which decentralized
//! applications are no longer hosted by specific servers", as runnable
//! mechanisms:
//!
//! * [`site`] — key-addressed sites (ZeroNet), signed versioned manifests,
//!   Beaker-style fork/merge with conflict reporting.
//! * [`swarm`] — tracker-based peer discovery and BitTorrent-style piece
//!   exchange where visitors become seeders, so a site outlives its origin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod site;
pub mod swarm;

pub use site::{
    merge_files, MergeConflict, SignedManifest, SiteBundle, SiteFile, SiteManifest, SitePublisher,
    SITE_PIECE_SIZE,
};
pub use swarm::{SwarmMsg, SwarmNode, VisitResult};

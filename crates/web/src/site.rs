//! Hostless web sites: signed, versioned, forkable bundles.
//!
//! §3.4's mechanism class: a site is identified by a public key (ZeroNet),
//! every version is a signed manifest over content-addressed pieces, and —
//! Beaker's contribution — sites can be *forked* (new key, explicit lineage)
//! and *merged* (file-level three-way-ish union with conflict reporting).

use agora_crypto::{sha256, tagged_hash, Enc, Hash256, SimKeyPair, SimPublicKey, SimSignature};
use agora_storage::{Chunk, Manifest};

/// One file inside a site bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteFile {
    /// Path within the site ("index.html", "app.js", ...).
    pub path: String,
    /// Content hash of the file bytes.
    pub content_hash: Hash256,
    /// Length in bytes.
    pub len: u64,
}

/// A site version: the signed unit peers exchange and verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteManifest {
    /// Site address = the publisher key fingerprint.
    pub site: Hash256,
    /// Monotonic version.
    pub version: u64,
    /// Root of the piece tree over the concatenated bundle (what the swarm
    /// transfers; see [`crate::swarm`]).
    pub bundle_root: Hash256,
    /// Bundle length in bytes.
    pub bundle_len: u64,
    /// Piece size used.
    pub piece_size: u32,
    /// Per-piece content hashes, in order (lets peers verify each piece as
    /// it arrives instead of only at completion).
    pub piece_ids: Vec<Hash256>,
    /// Files in the bundle, sorted by path.
    pub files: Vec<SiteFile>,
    /// Hash of the manifest this version descends from (fork lineage /
    /// previous version), if any.
    pub parent: Option<Hash256>,
}

impl SiteManifest {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new()
            .hash(&self.site)
            .u64(self.version)
            .hash(&self.bundle_root)
            .u64(self.bundle_len)
            .u32(self.piece_size)
            .u32(self.piece_ids.len() as u32);
        for pid in &self.piece_ids {
            e = e.hash(pid);
        }
        e = e.u32(self.files.len() as u32);
        for f in &self.files {
            e = e.str(&f.path).hash(&f.content_hash).u64(f.len);
        }
        match &self.parent {
            Some(p) => e = e.u8(1).hash(p),
            None => e = e.u8(0),
        }
        e.done()
    }

    /// Manifest hash (lineage pointer target).
    pub fn hash(&self) -> Hash256 {
        tagged_hash("site-manifest", &self.encode())
    }

    /// Wire size.
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// A manifest plus its publisher signature.
#[derive(Clone, Debug)]
pub struct SignedManifest {
    /// The manifest.
    pub manifest: SiteManifest,
    /// Publisher key (must fingerprint to `manifest.site`).
    pub author: SimPublicKey,
    /// Signature over the canonical encoding.
    pub signature: SimSignature,
}

impl SignedManifest {
    /// Verify authorship: key matches the site address and signs the bytes.
    pub fn verify(&self) -> bool {
        self.author.id() == self.manifest.site
            && self.author.verify(&self.manifest.encode(), &self.signature)
    }

    /// Wire size.
    pub fn wire_size(&self) -> u64 {
        self.manifest.wire_size() + 96
    }
}

/// A publisher: holds the site key and builds signed versions.
pub struct SitePublisher {
    keys: SimKeyPair,
    version: u64,
    last_hash: Option<Hash256>,
}

/// A built site bundle: the signed manifest plus the transferable pieces.
pub struct SiteBundle {
    /// The signed manifest.
    pub signed: SignedManifest,
    /// The bundle pieces, in order.
    pub pieces: Vec<Chunk>,
}

/// Piece size for site bundles (16 KiB — small sites fit in a few pieces).
pub const SITE_PIECE_SIZE: usize = 16 * 1024;

impl SitePublisher {
    /// New site with a fresh key derived from seed material.
    pub fn new(seed: &[u8]) -> SitePublisher {
        SitePublisher {
            keys: SimKeyPair::from_seed(seed),
            version: 0,
            last_hash: None,
        }
    }

    /// The site address.
    pub fn site_id(&self) -> Hash256 {
        self.keys.public().id()
    }

    /// Publish a new version from (path, bytes) files. Files are sorted by
    /// path; the bundle is their concatenation in that order.
    pub fn publish(&mut self, files: &[(&str, &[u8])]) -> SiteBundle {
        let mut sorted: Vec<(&str, &[u8])> = files.to_vec();
        sorted.sort_by_key(|(p, _)| p.to_string());
        let mut blob = Vec::new();
        let mut file_entries = Vec::new();
        for (path, bytes) in &sorted {
            file_entries.push(SiteFile {
                path: (*path).to_owned(),
                content_hash: sha256(bytes),
                len: bytes.len() as u64,
            });
            blob.extend_from_slice(bytes);
        }
        let (piece_manifest, pieces) = Manifest::build(&blob, SITE_PIECE_SIZE);
        self.version += 1;
        let manifest = SiteManifest {
            site: self.site_id(),
            version: self.version,
            bundle_root: piece_manifest.object_id,
            bundle_len: blob.len() as u64,
            piece_size: SITE_PIECE_SIZE as u32,
            piece_ids: piece_manifest.chunks.clone(),
            files: file_entries,
            parent: self.last_hash,
        };
        self.last_hash = Some(manifest.hash());
        let signature = self.keys.sign(&manifest.encode());
        SiteBundle {
            signed: SignedManifest {
                manifest,
                author: self.keys.public(),
                signature,
            },
            pieces,
        }
    }

    /// Fork a site (Beaker-style): a *new* key and address whose first
    /// version carries the source manifest's hash as parent, preserving
    /// provenance while transferring control.
    pub fn fork(seed: &[u8], source: &SiteManifest) -> SitePublisher {
        SitePublisher {
            keys: SimKeyPair::from_seed(seed),
            version: source.version,
            last_hash: Some(source.hash()),
        }
    }
}

/// A file-level merge conflict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeConflict {
    /// Conflicting path.
    pub path: String,
    /// Hash on our side.
    pub ours: Hash256,
    /// Hash on their side.
    pub theirs: Hash256,
}

/// Merge two manifests' file tables: union by path; same-path different-hash
/// entries are conflicts resolved in favour of `ours`, and reported.
pub fn merge_files(
    ours: &SiteManifest,
    theirs: &SiteManifest,
) -> (Vec<SiteFile>, Vec<MergeConflict>) {
    let mut out: Vec<SiteFile> = ours.files.clone();
    let mut conflicts = Vec::new();
    for tf in &theirs.files {
        match out.iter().find(|f| f.path == tf.path) {
            None => out.push(tf.clone()),
            Some(of) if of.content_hash == tf.content_hash => {}
            Some(of) => conflicts.push(MergeConflict {
                path: tf.path.clone(),
                ours: of.content_hash,
                theirs: tf.content_hash,
            }),
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    (out, conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> (SitePublisher, SiteBundle) {
        let mut p = SitePublisher::new(b"my-site");
        let b = p.publish(&[
            ("index.html", b"<h1>hello</h1>".as_slice()),
            ("app.js", b"console.log('hi')".as_slice()),
        ]);
        (p, b)
    }

    #[test]
    fn publish_produces_verifiable_manifest() {
        let (_p, bundle) = site();
        assert!(bundle.signed.verify());
        assert_eq!(bundle.signed.manifest.version, 1);
        assert_eq!(bundle.signed.manifest.files.len(), 2);
        assert!(bundle.signed.manifest.parent.is_none());
        // Files are sorted by path.
        assert_eq!(bundle.signed.manifest.files[0].path, "app.js");
    }

    #[test]
    fn tampered_manifest_fails_verification() {
        let (_p, bundle) = site();
        let mut evil = bundle.signed.clone();
        evil.manifest.files[0].content_hash = sha256(b"malware");
        assert!(!evil.verify());
    }

    #[test]
    fn non_owner_cannot_sign_updates() {
        let (_p, bundle) = site();
        let mallory = SimKeyPair::from_seed(b"mallory");
        let mut fake = bundle.signed.clone();
        fake.manifest.version = 2;
        fake.signature = mallory.sign(&fake.manifest.encode());
        assert!(!fake.verify(), "wrong key for the site address");
        // Even claiming mallory's key fails: fingerprint ≠ site address.
        fake.author = mallory.public();
        assert!(!fake.verify());
    }

    #[test]
    fn versions_chain_via_parent() {
        let (mut p, b1) = site();
        let b2 = p.publish(&[("index.html", b"<h1>v2</h1>".as_slice())]);
        assert_eq!(b2.signed.manifest.version, 2);
        assert_eq!(b2.signed.manifest.parent, Some(b1.signed.manifest.hash()));
        assert!(b2.signed.verify());
    }

    #[test]
    fn fork_changes_address_but_keeps_lineage() {
        let (_p, b1) = site();
        let mut fork = SitePublisher::fork(b"forker", &b1.signed.manifest);
        let fb = fork.publish(&[("index.html", b"<h1>forked</h1>".as_slice())]);
        assert_ne!(fb.signed.manifest.site, b1.signed.manifest.site);
        assert_eq!(fb.signed.manifest.parent, Some(b1.signed.manifest.hash()));
        assert!(fb.signed.verify());
    }

    #[test]
    fn merge_union_and_conflicts() {
        let mut a = SitePublisher::new(b"a");
        let ba = a.publish(&[
            ("index.html", b"<h1>a</h1>".as_slice()),
            ("shared.css", b"body{}".as_slice()),
        ]);
        let mut b = SitePublisher::fork(b"b", &ba.signed.manifest);
        let bb = b.publish(&[
            ("index.html", b"<h1>b</h1>".as_slice()), // conflicts
            ("shared.css", b"body{}".as_slice()),     // identical
            ("extra.js", b"x()".as_slice()),          // new
        ]);
        let (merged, conflicts) = merge_files(&ba.signed.manifest, &bb.signed.manifest);
        assert_eq!(merged.len(), 3);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].path, "index.html");
        // Ours wins in the merged table.
        let idx = merged.iter().find(|f| f.path == "index.html").unwrap();
        assert_eq!(idx.content_hash, sha256(b"<h1>a</h1>"));
    }

    #[test]
    fn merge_both_sides_edited_reports_conflict_and_ours_wins() {
        // A common parent, then both forks edit the same two files in
        // divergent ways: every edited path is a conflict, none of the
        // untouched paths are, and ours wins each conflicted path.
        let mut parent = SitePublisher::new(b"parent");
        let base = parent.publish(&[
            ("index.html", b"<h1>v0</h1>".as_slice()),
            ("style.css", b"body{}".as_slice()),
            ("keep.txt", b"same".as_slice()),
        ]);
        let mut ours = SitePublisher::fork(b"fork-ours", &base.signed.manifest);
        let our_manifest = ours
            .publish(&[
                ("index.html", b"<h1>ours</h1>".as_slice()),
                ("style.css", b"body{color:red}".as_slice()),
                ("keep.txt", b"same".as_slice()),
            ])
            .signed
            .manifest;
        let mut theirs = SitePublisher::fork(b"fork-theirs", &base.signed.manifest);
        let their_manifest = theirs
            .publish(&[
                ("index.html", b"<h1>theirs</h1>".as_slice()),
                ("style.css", b"body{color:blue}".as_slice()),
                ("keep.txt", b"same".as_slice()),
            ])
            .signed
            .manifest;
        let (merged, conflicts) = merge_files(&our_manifest, &their_manifest);
        assert_eq!(merged.len(), 3);
        let mut conflicted: Vec<&str> = conflicts.iter().map(|c| c.path.as_str()).collect();
        conflicted.sort_unstable();
        assert_eq!(conflicted, ["index.html", "style.css"]);
        for c in &conflicts {
            let winner = merged.iter().find(|f| f.path == c.path).unwrap();
            assert_eq!(winner.content_hash, c.ours, "ours wins {}", c.path);
            assert_ne!(c.ours, c.theirs);
        }
        // Output stays path-sorted.
        assert!(merged.windows(2).all(|w| w[0].path < w[1].path));
    }

    #[test]
    fn merge_delete_vs_edit_resurrects_without_conflict() {
        // Ours deleted a file (absent from our manifest); theirs edited
        // it. File-table merge is a union: the edited copy survives and
        // no conflict is reported — deletions cannot be distinguished
        // from never-having-had the file. The symmetric case (we edited,
        // they deleted) keeps our copy, also conflict-free.
        let mut parent = SitePublisher::new(b"parent-del");
        let base = parent.publish(&[
            ("index.html", b"<h1>v0</h1>".as_slice()),
            ("old.js", b"legacy()".as_slice()),
        ]);
        let mut ours = SitePublisher::fork(b"del-ours", &base.signed.manifest);
        let our_manifest = ours
            .publish(&[("index.html", b"<h1>v0</h1>".as_slice())]) // old.js deleted
            .signed
            .manifest;
        let mut theirs = SitePublisher::fork(b"del-theirs", &base.signed.manifest);
        let their_manifest = theirs
            .publish(&[
                ("index.html", b"<h1>v0</h1>".as_slice()),
                ("old.js", b"modern()".as_slice()), // old.js edited
            ])
            .signed
            .manifest;
        let (merged, conflicts) = merge_files(&our_manifest, &their_manifest);
        assert!(
            conflicts.is_empty(),
            "delete-vs-edit is silent: {conflicts:?}"
        );
        let revived = merged.iter().find(|f| f.path == "old.js").unwrap();
        assert_eq!(revived.content_hash, sha256(b"modern()"));

        // Symmetric: edit-vs-delete keeps the editing side's copy.
        let (merged2, conflicts2) = merge_files(&their_manifest, &our_manifest);
        assert!(conflicts2.is_empty());
        assert!(merged2.iter().any(|f| f.path == "old.js"));
        assert_eq!(merged.len(), merged2.len());
    }

    #[test]
    fn bundle_pieces_reassemble() {
        let mut p = SitePublisher::new(b"big-site");
        let big = vec![7u8; 100_000];
        let bundle = p.publish(&[("blob.bin", big.as_slice())]);
        let total: usize = bundle.pieces.iter().map(|c| c.data.len()).sum();
        assert_eq!(total as u64, bundle.signed.manifest.bundle_len);
        assert!(bundle.pieces.len() > 1);
        assert!(bundle.pieces.iter().all(|c| c.verify()));
    }
}

//! The peer-to-peer site swarm (ZeroNet mechanism class): "web applications
//! are seeded and served by visitors via the BitTorrent protocol".
//!
//! Peers announce the sites they seed to a tracker, visitors discover peers,
//! fetch the signed manifest, pull pieces in parallel from multiple seeders
//! (verifying each piece against the manifest's piece hashes), and — the
//! load-bearing §3.4 property — become seeders of what they visited.

use std::collections::HashMap;

use agora_crypto::{sha256, Hash256};
use agora_sim::retry::{CTR_RETRY_ATTEMPTS, CTR_RETRY_GAVE_UP};
use agora_sim::{Ctx, NodeId, Protocol, Retrier, RetryPolicy, SimDuration, SimTime};

use crate::site::{SignedManifest, SiteBundle};

/// Wire messages.
#[derive(Clone, Debug)]
pub enum SwarmMsg {
    /// Peer → tracker: I can serve this site.
    Announce {
        /// Site address.
        site: Hash256,
    },
    /// Peer → tracker: who serves this site?
    GetPeers {
        /// Site address.
        site: Hash256,
        /// Requester op id.
        req: u64,
    },
    /// Tracker's peer list.
    Peers {
        /// Echoed op id.
        req: u64,
        /// Known seeders (possibly stale).
        peers: Vec<NodeId>,
    },
    /// Fetch the signed manifest.
    GetManifest {
        /// Site address.
        site: Hash256,
        /// Requester op id.
        req: u64,
    },
    /// Manifest response.
    ManifestResp {
        /// Echoed op id.
        req: u64,
        /// The manifest if held (boxed: it dwarfs every other variant).
        manifest: Option<Box<SignedManifest>>,
    },
    /// Fetch one piece.
    GetPiece {
        /// Site address.
        site: Hash256,
        /// Piece index.
        index: u32,
        /// Requester op id.
        req: u64,
    },
    /// Piece response.
    PieceResp {
        /// Echoed op id.
        req: u64,
        /// Piece index.
        index: u32,
        /// The bytes if held.
        data: Option<Vec<u8>>,
    },
    /// Peer → tracker: I no longer serve this site (a policy-managed
    /// seeder standing down after the crowd passes).
    Retire {
        /// Site address.
        site: Hash256,
    },
}

impl SwarmMsg {
    fn wire_size(&self) -> u64 {
        match self {
            SwarmMsg::Announce { .. } | SwarmMsg::Retire { .. } => 40,
            SwarmMsg::GetPeers { .. } | SwarmMsg::GetManifest { .. } => 48,
            SwarmMsg::Peers { peers, .. } => 16 + peers.len() as u64 * 4,
            SwarmMsg::ManifestResp { manifest, .. } => {
                16 + manifest.as_ref().map_or(0, |m| m.wire_size())
            }
            SwarmMsg::GetPiece { .. } => 52,
            SwarmMsg::PieceResp { data, .. } => 20 + data.as_ref().map_or(0, |d| d.len() as u64),
        }
    }
}

/// Outcome of a site visit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VisitResult {
    /// Site fetched and verified; the visitor is now a seeder.
    Ok {
        /// Version fetched.
        version: u64,
        /// Total bytes transferred (content only).
        bytes: u64,
    },
    /// No live seeders / manifest unobtainable / pieces missing.
    Failed,
}

struct LocalSite {
    signed: SignedManifest,
    pieces: HashMap<u32, Vec<u8>>,
}

#[derive(PartialEq)]
enum VisitPhase {
    FindingPeers,
    FetchingManifest,
    FetchingPieces,
}

struct Visit {
    site: Hash256,
    phase: VisitPhase,
    peers: Vec<NodeId>,
    manifest: Option<SignedManifest>,
    got: HashMap<u32, Vec<u8>>,
    ticks: u32,
    /// When the visit was issued — feeds the `web.visit_secs` latency
    /// histogram so experiments report true per-visit tail latency.
    started: SimTime,
}

struct PeerState {
    trackers: Vec<NodeId>,
    sites: HashMap<Hash256, LocalSite>,
    visits: HashMap<u64, Visit>,
    results: HashMap<u64, VisitResult>,
    next_op: u64,
    retry: RetryPolicy,
    /// Per-visit retry pacing: (budget tracker, visit ticks until the next
    /// re-request round). Empty unless a retry policy is active.
    retriers: HashMap<u64, (Retrier, u32)>,
}

enum Role {
    Tracker(HashMap<Hash256, Vec<NodeId>>),
    Peer(Box<PeerState>),
}

/// A swarm participant.
pub struct SwarmNode {
    role: Role,
}

const VISIT_TICK: SimDuration = SimDuration::from_secs(2);
const MAX_VISIT_TICKS: u32 = 90;

/// Backoff durations are paced in whole visit ticks (minimum one).
fn visit_ticks_for(d: SimDuration) -> u32 {
    (d.micros() / VISIT_TICK.micros()).max(1) as u32
}

impl SwarmNode {
    /// A tracker.
    pub fn tracker() -> SwarmNode {
        SwarmNode {
            role: Role::Tracker(HashMap::new()),
        }
    }

    /// A peer using `tracker` for discovery.
    pub fn peer(tracker: NodeId) -> SwarmNode {
        SwarmNode::peer_with_trackers(vec![tracker])
    }

    /// A peer with redundant trackers: announces to all of them and merges
    /// their peer lists, so discovery survives tracker failures (the
    /// tracker is otherwise §3.4's own single point of failure).
    pub fn peer_with_trackers(trackers: Vec<NodeId>) -> SwarmNode {
        SwarmNode::peer_with_retry(trackers, RetryPolicy::none())
    }

    /// A peer whose stuck-visit re-requests are paced and budgeted by a
    /// retry policy instead of firing every tick. `RetryPolicy::none()`
    /// reproduces the default peer byte-for-byte.
    pub fn peer_with_retry(trackers: Vec<NodeId>, retry: RetryPolicy) -> SwarmNode {
        assert!(!trackers.is_empty(), "at least one tracker");
        SwarmNode {
            role: Role::Peer(Box::new(PeerState {
                trackers,
                sites: HashMap::new(),
                visits: HashMap::new(),
                results: HashMap::new(),
                next_op: 0,
                retry,
                retriers: HashMap::new(),
            })),
        }
    }

    /// Host (publish or re-publish) a site bundle and announce it.
    /// Rejects bundles whose signature does not verify.
    pub fn host_site(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, bundle: &SiteBundle) -> bool {
        let Role::Peer(p) = &mut self.role else {
            panic!("host_site on tracker")
        };
        if !bundle.signed.verify() {
            return false;
        }
        let site = bundle.signed.manifest.site;
        let pieces = bundle
            .pieces
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c.data.clone()))
            .collect();
        p.sites.insert(
            site,
            LocalSite {
                signed: bundle.signed.clone(),
                pieces,
            },
        );
        ctx.multicast(&p.trackers, SwarmMsg::Announce { site }, 40);
        true
    }

    /// Stop seeding `site`: drop the local copy and tell the trackers.
    /// The inverse of the seed-on-visit default — policy-managed pool
    /// seeders call this when the overload passes. Dormant unless called.
    pub fn retire(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, site: Hash256) {
        let Role::Peer(p) = &mut self.role else {
            panic!("retire on tracker")
        };
        if p.sites.remove(&site).is_none() {
            return;
        }
        ctx.multicast(&p.trackers, SwarmMsg::Retire { site }, 40);
        ctx.metrics().incr("web.retired", 1);
    }

    /// Whether this peer fully seeds `site` (all pieces held).
    pub fn seeds(&self, site: &Hash256) -> bool {
        match &self.role {
            Role::Peer(p) => p
                .sites
                .get(site)
                .is_some_and(|s| s.pieces.len() == s.signed.manifest.piece_ids.len()),
            Role::Tracker(_) => false,
        }
    }

    /// The version this peer holds of `site`, if any.
    pub fn held_version(&self, site: &Hash256) -> Option<u64> {
        match &self.role {
            Role::Peer(p) => p.sites.get(site).map(|s| s.signed.manifest.version),
            Role::Tracker(_) => None,
        }
    }

    /// Visit a site: discover peers, fetch, verify, then seed. Poll
    /// [`SwarmNode::take_result`].
    pub fn start_visit(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, site: Hash256) -> u64 {
        let Role::Peer(p) = &mut self.role else {
            panic!("start_visit on tracker")
        };
        let op = p.next_op;
        p.next_op += 1;
        ctx.multicast(&p.trackers, SwarmMsg::GetPeers { site, req: op }, 48);
        p.visits.insert(
            op,
            Visit {
                site,
                phase: VisitPhase::FindingPeers,
                peers: Vec::new(),
                manifest: None,
                got: HashMap::new(),
                ticks: 0,
                started: ctx.now(),
            },
        );
        ctx.set_timer(VISIT_TICK, op);
        if p.retry.is_active() {
            let mut r = Retrier::new(p.retry);
            if let Some(d) = r.next_backoff(ctx.rng()) {
                p.retriers.insert(op, (r, visit_ticks_for(d)));
            }
        }
        op
    }

    /// Collect a visit outcome.
    pub fn take_result(&mut self, op: u64) -> Option<VisitResult> {
        match &mut self.role {
            Role::Peer(p) => p.results.remove(&op),
            Role::Tracker(_) => None,
        }
    }

    /// Request all still-missing pieces, spread across known peers.
    fn request_missing(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, op: u64) {
        let Role::Peer(p) = &mut self.role else {
            return;
        };
        let Some(v) = p.visits.get(&op) else { return };
        let Some(m) = &v.manifest else { return };
        let total = m.manifest.piece_ids.len() as u32;
        let mut requests = Vec::new();
        // Rotate the piece→peer assignment by tick so a dead or stale peer
        // doesn't permanently own any piece index.
        let rotation = v.ticks as usize;
        for idx in 0..total {
            if !v.got.contains_key(&idx) {
                let peer = v.peers[(idx as usize + rotation) % v.peers.len()];
                requests.push((peer, idx));
            }
        }
        let site = v.site;
        for (peer, idx) in requests {
            let msg = SwarmMsg::GetPiece {
                site,
                index: idx,
                req: op,
            };
            let size = msg.wire_size();
            ctx.send(peer, msg, size);
        }
    }

    fn try_complete(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, op: u64) {
        let Role::Peer(p) = &mut self.role else {
            return;
        };
        let Some(v) = p.visits.get(&op) else { return };
        let Some(m) = &v.manifest else { return };
        if v.got.len() < m.manifest.piece_ids.len() {
            return;
        }
        let v = p.visits.remove(&op).expect("present");
        p.retriers.remove(&op);
        let m = v.manifest.expect("present");
        let bytes: u64 = v.got.values().map(|d| d.len() as u64).sum();
        let version = m.manifest.version;
        let site = v.site;
        p.sites.insert(
            site,
            LocalSite {
                signed: m,
                pieces: v.got,
            },
        );
        // The visitor becomes a seeder — §3.4's defining property.
        ctx.multicast(&p.trackers, SwarmMsg::Announce { site }, 40);
        ctx.metrics().incr("web.visits_ok", 1);
        ctx.metrics().incr("web.bytes_fetched", bytes);
        let took = ctx.now().since(v.started).secs_f64();
        ctx.metrics().sample("web.visit_secs", took);
        ctx.trace_point("web.visits_ok", bytes as f64);
        p.results.insert(op, VisitResult::Ok { version, bytes });
    }
}

impl Protocol for SwarmNode {
    type Msg = SwarmMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, from: NodeId, msg: SwarmMsg) {
        match (&mut self.role, msg) {
            (Role::Tracker(index), SwarmMsg::Announce { site }) => {
                let v = index.entry(site).or_default();
                if !v.contains(&from) {
                    v.push(from);
                }
                // Per-site seeder census as seen by this tracker.
                ctx.probe_signal("swarm.seeders", v.len() as f64);
            }
            (Role::Tracker(index), SwarmMsg::Retire { site }) => {
                if let Some(v) = index.get_mut(&site) {
                    v.retain(|&p| p != from);
                    ctx.probe_signal("swarm.seeders", v.len() as f64);
                }
            }
            (Role::Tracker(index), SwarmMsg::GetPeers { site, req }) => {
                let peers = index.get(&site).cloned().unwrap_or_default();
                let msg = SwarmMsg::Peers { req, peers };
                let size = msg.wire_size();
                ctx.send(from, msg, size);
            }
            (Role::Peer(p), SwarmMsg::Peers { req, peers }) => {
                let me = ctx.id();
                if let Some(v) = p.visits.get_mut(&req) {
                    // Merge peer lists from (possibly several) trackers.
                    for n in peers.into_iter().filter(|&n| n != me) {
                        if !v.peers.contains(&n) {
                            v.peers.push(n);
                        }
                    }
                    if v.peers.is_empty() {
                        // Another tracker may still answer; the visit tick
                        // bounds how long we wait in FindingPeers.
                        return;
                    }
                    if v.phase == VisitPhase::FindingPeers {
                        v.phase = VisitPhase::FetchingManifest;
                        let site = v.site;
                        // Ask every known peer; take the best valid answer.
                        let targets = v.peers.clone();
                        let msg = SwarmMsg::GetManifest { site, req };
                        let size = msg.wire_size();
                        ctx.multicast(&targets, msg, size);
                    }
                }
            }
            (Role::Peer(p), SwarmMsg::GetManifest { site, req }) => {
                let manifest = p.sites.get(&site).map(|s| Box::new(s.signed.clone()));
                let msg = SwarmMsg::ManifestResp { req, manifest };
                let size = msg.wire_size();
                ctx.send(from, msg, size);
            }
            (Role::Peer(p), SwarmMsg::ManifestResp { req, manifest }) => {
                let Some(v) = p.visits.get_mut(&req) else {
                    return;
                };
                let Some(sm) = manifest else { return };
                // Verify signature + address; prefer the newest version.
                if !sm.verify() || sm.manifest.site != v.site {
                    ctx.metrics().incr("web.bad_manifests", 1);
                    return;
                }
                let newer = v
                    .manifest
                    .as_ref()
                    .is_none_or(|cur| sm.manifest.version > cur.manifest.version);
                let advancing = v.phase == VisitPhase::FetchingManifest;
                if newer {
                    v.manifest = Some(*sm);
                    v.got.clear();
                }
                if advancing || newer {
                    v.phase = VisitPhase::FetchingPieces;
                    self.request_missing(ctx, req);
                }
            }
            (Role::Peer(p), SwarmMsg::GetPiece { site, index, req }) => {
                let data = p
                    .sites
                    .get(&site)
                    .and_then(|s| s.pieces.get(&index))
                    .cloned();
                if data.is_some() {
                    ctx.metrics().incr("web.pieces_served", 1);
                    ctx.trace_point("web.pieces_served", index as f64);
                }
                let msg = SwarmMsg::PieceResp { req, index, data };
                let size = msg.wire_size();
                ctx.send(from, msg, size);
            }
            (Role::Peer(p), SwarmMsg::PieceResp { req, index, data }) => {
                let Some(v) = p.visits.get_mut(&req) else {
                    return;
                };
                let Some(m) = &v.manifest else { return };
                let Some(data) = data else { return };
                let Some(expected) = m.manifest.piece_ids.get(index as usize) else {
                    return;
                };
                if sha256(&data) != *expected {
                    ctx.metrics().incr("web.bad_pieces", 1);
                    return;
                }
                v.got.insert(index, data);
                self.try_complete(ctx, req);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SwarmMsg>, op: u64) {
        let Role::Peer(p) = &mut self.role else {
            return;
        };
        let Some(v) = p.visits.get_mut(&op) else {
            return;
        };
        v.ticks += 1;
        if v.ticks > MAX_VISIT_TICKS {
            let ticks = v.ticks;
            p.visits.remove(&op);
            ctx.metrics().incr("web.visits_failed", 1);
            ctx.trace_point("web.visits_failed", ticks as f64);
            if p.retry.is_active() {
                p.retriers.remove(&op);
                ctx.metrics().incr(CTR_RETRY_GAVE_UP, 1);
                ctx.trace_point("retry.gave_up", 1.0);
            }
            p.results.insert(op, VisitResult::Failed);
            return;
        }
        // With a retry policy armed, re-request rounds are paced by backoff
        // and budgeted; without one, every tick retries (the default).
        let mut counted = false;
        if p.retry.is_active() {
            match p.retriers.get_mut(&op) {
                Some((_, ticks)) if *ticks > 1 => {
                    *ticks -= 1;
                    ctx.set_timer(VISIT_TICK, op);
                    return;
                }
                Some(_) => counted = true,
                None => {
                    // Budget exhausted: stop re-requesting; in-flight
                    // responses may still complete the visit before the
                    // deadline fails it.
                    ctx.set_timer(VISIT_TICK, op);
                    return;
                }
            }
        }
        // Retry whatever stage we're stuck in.
        let site = v.site;
        match v.phase {
            VisitPhase::FindingPeers => {
                // No tracker produced peers yet; give up early rather than
                // burning the whole visit budget on discovery.
                if v.ticks >= 5 {
                    p.visits.remove(&op);
                    p.retriers.remove(&op);
                    ctx.metrics().incr("web.visits_failed", 1);
                    p.results.insert(op, VisitResult::Failed);
                    return;
                }
                let trackers = p.trackers.clone();
                ctx.multicast(&trackers, SwarmMsg::GetPeers { site, req: op }, 48);
            }
            VisitPhase::FetchingManifest => {
                let targets = v.peers.clone();
                let msg = SwarmMsg::GetManifest { site, req: op };
                let size = msg.wire_size();
                ctx.multicast(&targets, msg, size);
            }
            VisitPhase::FetchingPieces => self.request_missing(ctx, op),
        }
        if let Role::Peer(p) = &mut self.role {
            if counted && p.visits.contains_key(&op) {
                ctx.metrics().incr(CTR_RETRY_ATTEMPTS, 1);
                ctx.trace_point("retry.attempt", 1.0);
                if let Some((r, ticks)) = p.retriers.get_mut(&op) {
                    match r.next_backoff(ctx.rng()) {
                        Some(d) => *ticks = visit_ticks_for(d),
                        None => {
                            p.retriers.remove(&op);
                        }
                    }
                }
            }
            if p.visits.contains_key(&op) {
                ctx.set_timer(VISIT_TICK, op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SitePublisher;
    use agora_sim::{DeviceClass, Simulation};

    fn build(n_peers: usize, seed: u64) -> (Simulation<SwarmNode>, NodeId, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
        let mut peers = Vec::new();
        for _ in 0..n_peers {
            peers.push(sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer));
        }
        (sim, tracker, peers)
    }

    fn publish_site(content_len: usize) -> (Hash256, SiteBundle) {
        let mut publisher = SitePublisher::new(b"origin");
        let content = vec![42u8; content_len];
        let bundle = publisher.publish(&[("index.html", content.as_slice())]);
        (publisher.site_id(), bundle)
    }

    #[test]
    fn visit_downloads_and_seeds() {
        let (mut sim, _tracker, peers) = build(4, 1);
        let (site, bundle) = publish_site(50_000);
        assert!(sim
            .with_ctx(peers[0], |n, ctx| n.host_site(ctx, &bundle))
            .unwrap());
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(peers[1], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        match sim.node_mut(peers[1]).take_result(op) {
            Some(VisitResult::Ok { version, bytes }) => {
                assert_eq!(version, 1);
                assert_eq!(bytes, 50_000);
            }
            other => panic!("visit failed: {other:?}"),
        }
        assert!(sim.node(peers[1]).seeds(&site), "visitor became a seeder");
    }

    #[test]
    fn retired_seeder_leaves_the_index_and_stops_serving() {
        let (mut sim, _tracker, peers) = build(4, 12);
        let (site, bundle) = publish_site(30_000);
        sim.with_ctx(peers[0], |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        // A second seeder joins via visit, then stands down.
        let op = sim
            .with_ctx(peers[1], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        assert!(matches!(
            sim.node_mut(peers[1]).take_result(op),
            Some(VisitResult::Ok { .. })
        ));
        assert!(sim.node(peers[1]).seeds(&site));
        sim.with_ctx(peers[1], |n, ctx| n.retire(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        assert!(!sim.node(peers[1]).seeds(&site), "local copy dropped");
        assert_eq!(sim.metrics().counter("web.retired"), 1);
        // Retiring a site we never held is a no-op (idempotent for the
        // policy's reconcile loop).
        sim.with_ctx(peers[1], |n, ctx| n.retire(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.metrics().counter("web.retired"), 1);
        // The origin still serves later visitors; the tracker no longer
        // points anyone at the retired peer.
        let op2 = sim
            .with_ctx(peers[2], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        assert!(matches!(
            sim.node_mut(peers[2]).take_result(op2),
            Some(VisitResult::Ok { .. })
        ));
    }

    #[test]
    fn unseeded_site_visit_fails() {
        let (mut sim, _tracker, peers) = build(2, 2);
        let op = sim
            .with_ctx(peers[0], |n, ctx| n.start_visit(ctx, sha256(b"ghost")))
            .unwrap();
        sim.run_for(SimDuration::from_mins(1));
        assert_eq!(
            sim.node_mut(peers[0]).take_result(op),
            Some(VisitResult::Failed)
        );
    }

    #[test]
    fn site_survives_origin_death_via_visitor_seeding() {
        let (mut sim, _tracker, peers) = build(5, 3);
        let (site, bundle) = publish_site(40_000);
        sim.with_ctx(peers[0], |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        // One visitor fetches while the origin lives.
        let op = sim
            .with_ctx(peers[1], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        assert!(matches!(
            sim.node_mut(peers[1]).take_result(op),
            Some(VisitResult::Ok { .. })
        ));
        // Origin dies; a later visitor is served by the first visitor.
        sim.kill(peers[0]);
        let op2 = sim
            .with_ctx(peers[2], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(3));
        assert!(
            matches!(
                sim.node_mut(peers[2]).take_result(op2),
                Some(VisitResult::Ok { .. })
            ),
            "§3.4: the site outlives its origin as long as visitors seed"
        );
    }

    #[test]
    fn tracker_failover_keeps_discovery_alive() {
        // Two trackers; the first dies; visits still resolve via the second.
        let mut sim = Simulation::new(11);
        let t0 = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
        let t1 = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
        let origin = sim.add_node(
            SwarmNode::peer_with_trackers(vec![t0, t1]),
            DeviceClass::PersonalComputer,
        );
        let visitor = sim.add_node(
            SwarmNode::peer_with_trackers(vec![t0, t1]),
            DeviceClass::PersonalComputer,
        );
        let (site, bundle) = publish_site(30_000);
        sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(t0);
        let op = sim
            .with_ctx(visitor, |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        assert!(
            matches!(
                sim.node_mut(visitor).take_result(op),
                Some(VisitResult::Ok { .. })
            ),
            "the surviving tracker should serve discovery"
        );
    }

    #[test]
    fn single_tracker_death_kills_fresh_discovery() {
        // The baseline SPOF: with one tracker down, new visitors cannot
        // discover seeders at all.
        let mut sim = Simulation::new(12);
        let t0 = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
        let origin = sim.add_node(SwarmNode::peer(t0), DeviceClass::PersonalComputer);
        let visitor = sim.add_node(SwarmNode::peer(t0), DeviceClass::PersonalComputer);
        let (site, bundle) = publish_site(30_000);
        sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.kill(t0);
        let op = sim
            .with_ctx(visitor, |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        assert_eq!(
            sim.node_mut(visitor).take_result(op),
            Some(VisitResult::Failed)
        );
    }

    #[test]
    fn forged_bundle_rejected_at_host() {
        let (mut sim, _tracker, peers) = build(1, 4);
        let (_site, mut bundle) = publish_site(1000);
        bundle.signed.manifest.version = 99; // breaks the signature
        let ok = sim
            .with_ctx(peers[0], |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        assert!(!ok);
    }

    #[test]
    fn visitors_fetch_newest_version_available() {
        let (mut sim, _tracker, peers) = build(3, 5);
        let mut publisher = SitePublisher::new(b"origin");
        let v1 = publisher.publish(&[("index.html", b"v1".as_slice())]);
        let site = publisher.site_id();
        let v2 = publisher.publish(&[("index.html", b"v2 content".as_slice())]);
        // Peer 0 seeds v1, peer 1 seeds v2.
        sim.with_ctx(peers[0], |n, ctx| n.host_site(ctx, &v1))
            .unwrap();
        sim.with_ctx(peers[1], |n, ctx| n.host_site(ctx, &v2))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(peers[2], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(2));
        match sim.node_mut(peers[2]).take_result(op) {
            Some(VisitResult::Ok { version, .. }) => assert_eq!(version, 2),
            other => panic!("visit failed: {other:?}"),
        }
        assert_eq!(sim.node(peers[2]).held_version(&site), Some(2));
    }

    #[test]
    fn corrupted_pieces_are_rejected_and_refetched() {
        // A malicious seeder serving garbage can slow but not poison a
        // visit while an honest seeder exists: bad pieces fail the hash
        // check and are re-requested (round-robin hits the honest peer).
        let (mut sim, _tracker, peers) = build(3, 6);
        let (site, bundle) = publish_site(60_000);
        sim.with_ctx(peers[0], |n, ctx| n.host_site(ctx, &bundle))
            .unwrap();
        // Peer 1 hosts a corrupted copy (flip bytes in every piece) —
        // manifest is genuine, pieces are not.
        let mut corrupt = SiteBundle {
            signed: bundle.signed.clone(),
            pieces: bundle.pieces.clone(),
        };
        for c in &mut corrupt.pieces {
            c.data[0] ^= 0xff; // id no longer matches data
        }
        sim.with_ctx(peers[1], |n, ctx| n.host_site(ctx, &corrupt))
            .unwrap();
        sim.run_for(SimDuration::from_secs(2));
        let op = sim
            .with_ctx(peers[2], |n, ctx| n.start_visit(ctx, site))
            .unwrap();
        sim.run_for(SimDuration::from_mins(3));
        match sim.node_mut(peers[2]).take_result(op) {
            Some(VisitResult::Ok { bytes, .. }) => assert_eq!(bytes, 60_000),
            other => panic!("visit should eventually succeed: {other:?}"),
        }
        assert!(sim.metrics().counter("web.bad_pieces") > 0);
    }

    #[test]
    fn retry_paced_visits_succeed_under_loss_and_stay_dormant_by_default() {
        use agora_sim::Jitter;
        let run = |retry: RetryPolicy| {
            let mut sim = Simulation::new(13);
            let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
            let seeder = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
            let visitor = sim.add_node(
                SwarmNode::peer_with_retry(vec![tracker], retry),
                DeviceClass::PersonalComputer,
            );
            let (site, bundle) = publish_site(40_000);
            sim.with_ctx(seeder, |n, ctx| n.host_site(ctx, &bundle))
                .unwrap();
            sim.run_for(SimDuration::from_secs(5));
            sim.set_loss_rate(0.3);
            let op = sim
                .with_ctx(visitor, |n, ctx| n.start_visit(ctx, site))
                .unwrap();
            sim.run_for(SimDuration::from_mins(4));
            let ok = matches!(
                sim.node_mut(visitor).take_result(op),
                Some(VisitResult::Ok { .. })
            );
            (ok, sim.metrics().counter(CTR_RETRY_ATTEMPTS))
        };
        let policy = RetryPolicy {
            base: SimDuration::from_secs(1),
            factor: 2.0,
            cap: SimDuration::from_secs(4),
            max_attempts: 12,
            jitter: Jitter::Decorrelated,
            hedge_after: None,
        };
        let (ok_retry, attempts_retry) = run(policy);
        assert!(ok_retry, "paced re-requests should complete the visit");
        assert!(attempts_retry >= 1, "re-request rounds must be counted");
        let (ok_plain, attempts_plain) = run(RetryPolicy::none());
        assert_eq!(attempts_plain, 0, "dormant by default");
        assert!(ok_plain, "every-tick retry still succeeds without a policy");
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Property-based tests for site manifests and fork/merge semantics.

use agora_web::{merge_files, SitePublisher};
use proptest::prelude::*;

fn file_set() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (
            "[a-z]{1,10}\\.[a-z]{2,4}",
            proptest::collection::vec(any::<u8>(), 0..300),
        ),
        1..8,
    )
    .prop_map(|mut v| {
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

proptest! {
    /// Published bundles verify; any field mutation invalidates them; piece
    /// bytes always total the manifest's bundle length.
    #[test]
    fn publish_invariants(files in file_set(), seed in any::<u64>()) {
        let mut p = SitePublisher::new(&seed.to_be_bytes());
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(n, d)| (n.as_str(), d.as_slice())).collect();
        let bundle = p.publish(&refs);
        prop_assert!(bundle.signed.verify());
        prop_assert_eq!(bundle.signed.manifest.files.len(), files.len());
        let total: u64 = bundle.pieces.iter().map(|c| c.data.len() as u64).sum();
        prop_assert_eq!(total, bundle.signed.manifest.bundle_len);
        prop_assert_eq!(
            bundle.signed.manifest.piece_ids.len(),
            bundle.pieces.len()
        );
        // Every mutation breaks the signature.
        let mut evil = bundle.signed.clone();
        evil.manifest.bundle_len ^= 1;
        prop_assert!(!evil.verify());
    }

    /// Version chains: successive publishes link via parent hashes and
    /// increment versions.
    #[test]
    fn version_chain(files in file_set(), n in 1usize..5) {
        let mut p = SitePublisher::new(b"chain-site");
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(nm, d)| (nm.as_str(), d.as_slice())).collect();
        let mut prev_hash = None;
        for v in 1..=n as u64 {
            let b = p.publish(&refs);
            prop_assert_eq!(b.signed.manifest.version, v);
            prop_assert_eq!(b.signed.manifest.parent, prev_hash);
            prev_hash = Some(b.signed.manifest.hash());
        }
    }

    /// Merge is a union: every path from either side appears exactly once;
    /// conflicts are exactly the same-path-different-hash cases; `ours`
    /// always wins conflicted paths.
    #[test]
    fn merge_properties(ours in file_set(), theirs in file_set()) {
        let mut pa = SitePublisher::new(b"merge-a");
        let mut pb = SitePublisher::new(b"merge-b");
        let ra: Vec<(&str, &[u8])> = ours.iter().map(|(n, d)| (n.as_str(), d.as_slice())).collect();
        let rb: Vec<(&str, &[u8])> = theirs.iter().map(|(n, d)| (n.as_str(), d.as_slice())).collect();
        let ma = pa.publish(&ra).signed.manifest;
        let mb = pb.publish(&rb).signed.manifest;
        let (merged, conflicts) = merge_files(&ma, &mb);
        // Exactly the union of paths.
        let mut expect: Vec<&str> = ours.iter().map(|(n, _)| n.as_str())
            .chain(theirs.iter().map(|(n, _)| n.as_str()))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<&str> = merged.iter().map(|f| f.path.as_str()).collect();
        prop_assert_eq!(got, expect);
        // Conflicts are same-path different-content pairs, resolved ours-first.
        for c in &conflicts {
            let of = ma.files.iter().find(|f| f.path == c.path).expect("ours has it");
            let tf = mb.files.iter().find(|f| f.path == c.path).expect("theirs has it");
            prop_assert_ne!(of.content_hash, tf.content_hash);
            let mf = merged.iter().find(|f| f.path == c.path).expect("merged has it");
            prop_assert_eq!(mf.content_hash, of.content_hash, "ours wins");
        }
        // Merge with self is conflict-free and identity.
        let (self_merge, self_conflicts) = merge_files(&ma, &ma);
        prop_assert!(self_conflicts.is_empty());
        prop_assert_eq!(self_merge.len(), ma.files.len());
    }
}

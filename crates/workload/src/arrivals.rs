//! Arrival-rate models: diurnal intensity curves, timezone mixes, and the
//! flash-crowd primitive, composed into one [`DemandModel`] multiplier.
//!
//! All shapes are *multipliers over a base rate* normalized so that a flat
//! day integrates to 1.0 × the configured daily volume: a population of P
//! users each making R actions/day produces P·R expected demands per
//! simulated day regardless of how the curve redistributes them across
//! hours (the flash crowd, by design, adds volume on top).

use agora_sim::SimDuration;

/// Seconds in a simulated day.
pub const DAY_SECS: f64 = 86_400.0;

/// A 24-hour intensity curve, piecewise-constant per hour, normalized so
/// its daily mean is exactly 1.0. Local time: hour 0 is midnight in the
/// curve's own timezone.
#[derive(Clone, Debug)]
pub struct DiurnalCurve {
    weights: [f64; 24],
}

impl DiurnalCurve {
    /// Normalize raw hourly weights to a mean of 1.0.
    pub fn new(raw: [f64; 24]) -> DiurnalCurve {
        let sum: f64 = raw.iter().sum();
        assert!(sum > 0.0 && sum.is_finite(), "diurnal curve needs mass");
        let mut weights = raw;
        for w in &mut weights {
            assert!(*w >= 0.0, "negative hourly weight");
            *w *= 24.0 / sum;
        }
        DiurnalCurve { weights }
    }

    /// A flat curve: multiplier 1.0 at every hour.
    pub fn flat() -> DiurnalCurve {
        DiurnalCurve { weights: [1.0; 24] }
    }

    /// Residential access pattern: quiet overnight trough, morning
    /// shoulder, evening prime-time peak — the shape reported by ISP and
    /// CDN traffic studies. Peak-to-trough ratio ≈ 5.
    pub fn residential() -> DiurnalCurve {
        DiurnalCurve::new([
            0.5, 0.35, 0.25, 0.2, 0.2, 0.3, // 00–05: overnight trough
            0.5, 0.8, 1.0, 1.1, 1.1, 1.15, // 06–11: morning ramp
            1.2, 1.15, 1.1, 1.1, 1.2, 1.4, // 12–17: afternoon plateau
            1.7, 2.0, 2.1, 1.9, 1.4, 0.9, // 18–23: evening prime time
        ])
    }

    /// Intensity multiplier at a fraction of the local day in `[0, 1)`
    /// (values outside wrap).
    pub fn intensity(&self, day_frac: f64) -> f64 {
        let f = day_frac.rem_euclid(1.0);
        self.weights[((f * 24.0) as usize).min(23)]
    }
}

/// A weighted mix of timezones sharing one [`DiurnalCurve`]: the global
/// multiplier at UTC instant `t` is the weight-averaged local intensity.
/// Spreading a population across offsets flattens the global curve — the
/// same effect that lets follow-the-sun systems amortize capacity.
#[derive(Clone, Debug)]
pub struct ZoneMix {
    zones: Vec<(i32, f64)>,
    curve: DiurnalCurve,
}

impl ZoneMix {
    /// All users in one timezone (UTC offset 0).
    pub fn single(curve: DiurnalCurve) -> ZoneMix {
        ZoneMix {
            zones: vec![(0, 1.0)],
            curve,
        }
    }

    /// Explicit `(utc_offset_hours, weight)` zones; weights are normalized.
    pub fn new(zones: Vec<(i32, f64)>, curve: DiurnalCurve) -> ZoneMix {
        assert!(!zones.is_empty(), "zone mix needs at least one zone");
        let total: f64 = zones.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0 && total.is_finite(), "zone weights need mass");
        let zones = zones.into_iter().map(|(o, w)| (o, w / total)).collect();
        ZoneMix { zones, curve }
    }

    /// A three-region split roughly matching Internet population shares:
    /// Americas (UTC−5, 30%), Europe/Africa (UTC+1, 35%), Asia/Pacific
    /// (UTC+8, 35%).
    pub fn global_three_region(curve: DiurnalCurve) -> ZoneMix {
        ZoneMix::new(vec![(-5, 0.30), (1, 0.35), (8, 0.35)], curve)
    }

    /// The mix-wide multiplier at `t_secs` seconds of UTC sim time.
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let day_frac = t_secs / DAY_SECS;
        self.zones
            .iter()
            .map(|&(offset, w)| w * self.curve.intensity(day_frac + offset as f64 / 24.0))
            .sum()
    }
}

/// A flash crowd pinned to a sim-time window: exponential ramp from 1× to
/// `peak`×, a plateau, then exponential decay back to 1×. Multiplies the
/// diurnal rate, so a prime-time flash is worse than a 4 a.m. one.
#[derive(Clone, Copy, Debug)]
pub struct FlashCrowd {
    /// Onset (offset from workload start).
    pub start: SimDuration,
    /// Exponential ramp length.
    pub ramp: SimDuration,
    /// Time held at full peak.
    pub plateau: SimDuration,
    /// Exponential decay length.
    pub decay: SimDuration,
    /// Peak multiplier (≥ 1).
    pub peak: f64,
}

impl FlashCrowd {
    /// End of the episode (start + ramp + plateau + decay).
    pub fn end(&self) -> SimDuration {
        self.start + self.ramp + self.plateau + self.decay
    }

    /// Multiplier at `t_secs` seconds of sim time: 1 outside the window,
    /// `peak^x` on the ramp (x ∈ [0,1]), `peak` on the plateau,
    /// `peak^(1−y)` on the decay.
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let peak = self.peak.max(1.0);
        let start = self.start.secs_f64();
        let ramp_end = start + self.ramp.secs_f64();
        let plateau_end = ramp_end + self.plateau.secs_f64();
        let decay_end = plateau_end + self.decay.secs_f64();
        if t_secs < start || t_secs >= decay_end {
            1.0
        } else if t_secs < ramp_end {
            let x = (t_secs - start) / self.ramp.secs_f64().max(1e-9);
            peak.powf(x)
        } else if t_secs < plateau_end {
            peak
        } else {
            let y = (t_secs - plateau_end) / self.decay.secs_f64().max(1e-9);
            peak.powf(1.0 - y)
        }
    }
}

/// The composed demand model: a timezone-mixed diurnal baseline, times an
/// optional flash crowd.
#[derive(Clone, Debug)]
pub struct DemandModel {
    /// The diurnal baseline.
    pub zones: ZoneMix,
    /// Optional flash-crowd episode.
    pub flash: Option<FlashCrowd>,
}

/// Sub-intervals per tick used by the midpoint quadrature in
/// [`DemandModel::mean_over`].
const QUAD_STEPS: usize = 4;

impl DemandModel {
    /// A flat, flash-free model (multiplier ≡ 1).
    pub fn flat() -> DemandModel {
        DemandModel {
            zones: ZoneMix::single(DiurnalCurve::flat()),
            flash: None,
        }
    }

    /// The instantaneous rate multiplier at `t_secs`.
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        let base = self.zones.multiplier(t_secs);
        match &self.flash {
            Some(f) => base * f.multiplier(t_secs),
            None => base,
        }
    }

    /// Mean multiplier over `[t0, t1)` by midpoint quadrature (piecewise
    /// thinning integrates the rate per tick, then places reps by
    /// rejection against [`DemandModel::peak_over`]).
    pub fn mean_over(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return self.multiplier(t0);
        }
        let h = (t1 - t0) / QUAD_STEPS as f64;
        (0..QUAD_STEPS)
            .map(|i| self.multiplier(t0 + (i as f64 + 0.5) * h))
            .sum::<f64>()
            / QUAD_STEPS as f64
    }

    /// An upper bound on the multiplier over `[t0, t1)`: the max over the
    /// endpoints and quadrature midpoints, padded 5% for the exponential
    /// flash ramp between sample points. Used as the thinning envelope.
    pub fn peak_over(&self, t0: f64, t1: f64) -> f64 {
        let h = (t1 - t0).max(0.0) / QUAD_STEPS as f64;
        let mut peak = self.multiplier(t0).max(self.multiplier(t1));
        for i in 0..QUAD_STEPS {
            peak = peak.max(self.multiplier(t0 + (i as f64 + 0.5) * h));
        }
        peak * 1.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_is_unit() {
        let c = DiurnalCurve::flat();
        for h in 0..24 {
            assert_eq!(c.intensity(h as f64 / 24.0), 1.0);
        }
    }

    #[test]
    fn residential_curve_normalized_and_peaky() {
        let c = DiurnalCurve::residential();
        let mean: f64 = (0..24).map(|h| c.intensity(h as f64 / 24.0)).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-12, "mean {mean}");
        let trough = c.intensity(4.0 / 24.0);
        let peak = c.intensity(20.0 / 24.0);
        assert!(peak / trough > 4.0, "peak {peak} trough {trough}");
    }

    #[test]
    fn intensity_wraps_across_midnight() {
        let c = DiurnalCurve::residential();
        assert_eq!(c.intensity(1.25), c.intensity(0.25));
        assert_eq!(c.intensity(-0.5), c.intensity(0.5));
    }

    #[test]
    fn zone_mix_flattens_the_globe() {
        let single = ZoneMix::single(DiurnalCurve::residential());
        let mixed = ZoneMix::global_three_region(DiurnalCurve::residential());
        let spread = |z: &ZoneMix| {
            let vals: Vec<f64> = (0..96).map(|i| z.multiplier(i as f64 * 900.0)).collect();
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(
            spread(&mixed) < spread(&single),
            "mixing timezones must flatten the curve"
        );
    }

    #[test]
    fn zone_mix_daily_mean_is_one() {
        let mixed = ZoneMix::global_three_region(DiurnalCurve::residential());
        // Hourly steps at hour offsets with integral weights: exact sum.
        let mean: f64 = (0..24)
            .map(|h| mixed.multiplier(h as f64 * 3600.0 + 1.0))
            .sum::<f64>()
            / 24.0;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn flash_shape() {
        let f = FlashCrowd {
            start: SimDuration::from_secs(1000),
            ramp: SimDuration::from_secs(100),
            plateau: SimDuration::from_secs(200),
            decay: SimDuration::from_secs(100),
            peak: 16.0,
        };
        assert_eq!(f.multiplier(0.0), 1.0);
        assert_eq!(f.multiplier(999.9), 1.0);
        assert!(
            (f.multiplier(1050.0) - 4.0).abs() < 1e-9,
            "mid-ramp = sqrt(peak)"
        );
        assert_eq!(f.multiplier(1200.0), 16.0);
        assert!((f.multiplier(1350.0) - 4.0).abs() < 1e-9, "mid-decay");
        assert_eq!(f.multiplier(1400.0), 1.0);
        assert_eq!(f.end(), SimDuration::from_secs(1400));
    }

    #[test]
    fn demand_model_mean_and_peak_bound() {
        let model = DemandModel {
            zones: ZoneMix::single(DiurnalCurve::residential()),
            flash: Some(FlashCrowd {
                start: SimDuration::from_secs(43_200),
                ramp: SimDuration::from_secs(1800),
                plateau: SimDuration::from_secs(3600),
                decay: SimDuration::from_secs(1800),
                peak: 10.0,
            }),
        };
        // peak_over must dominate the multiplier everywhere in the window.
        for k in 0..96 {
            let t0 = k as f64 * 900.0;
            let t1 = t0 + 900.0;
            let bound = model.peak_over(t0, t1);
            for j in 0..30 {
                let t = t0 + j as f64 * 30.0;
                assert!(
                    model.multiplier(t) <= bound + 1e-9,
                    "t={t}: {} > {bound}",
                    model.multiplier(t)
                );
            }
        }
        // Flat model integrates to 1 exactly.
        assert!((DemandModel::flat().mean_over(0.0, DAY_SECS) - 1.0).abs() < 1e-12);
    }
}

//! Cohort-scaled workload compilation and the [`WorkloadDriver`] that
//! replays a compiled schedule against a running simulation.
//!
//! The design mirrors `agora_sim::chaos`: a [`WorkloadSpec`] is *compiled*
//! — with a dedicated `SimRng` so the engine stream is never perturbed —
//! into a time-sorted [`WorkloadSchedule`] of concrete actions, and a
//! [`WorkloadDriver`] interleaves those actions with normal event
//! processing at their exact simulated instants. The schedule is a pure
//! function of `(spec, seed, churnable, horizon)`, so workload runs are
//! byte-identical across harness thread counts like everything else.
//!
//! ## Cohorts
//!
//! A population of P users is split into C homogeneous cohorts
//! (`P/C` users each, remainder spread over the first cohorts). Because a
//! sum of independent Poisson processes is a Poisson process of the summed
//! rate, per-tick demand for a whole cohort is one draw from
//! `Poisson(users × rate × ∫multiplier)` — aggregation is *exact in
//! distribution*, not an approximation (the only approximation is the
//! normal tail used for means ≥ 64; see `samplers::poisson_scaled`). The
//! engine therefore processes O(C) events per tick regardless of P: a
//! million users cost the same event budget as ten. Each scheduled
//! [`Demand`] is a *representative* request carrying `weight =
//! count/representatives`, so load accounting still sums to the full
//! population's demand.
//!
//! Setting `cohorts == population` collapses the layer: every cohort is
//! one user drawing from its own forked stream — per-user generation,
//! pinned by the `cohort_of_one_is_per_user_generation` test.

use agora_sim::{NodeId, Protocol, SimDuration, SimRng, SimTime, Simulation};

use crate::arrivals::DemandModel;
use crate::samplers::{poisson_scaled, BoundedPareto, LogNormalSessions, ZipfAlias};

/// Diurnal churn targets: what fraction of the churnable node set is
/// offline when activity is at its daily peak vs its trough. Victims are
/// a prefix of one seeded permutation (the chaos rule), so the offline set
/// at any instant is a superset of the offline set at any
/// higher-activity instant — churn composes monotonically.
#[derive(Clone, Copy, Debug)]
pub struct ChurnCurve {
    /// Offline fraction at peak activity (most users online).
    pub offline_at_peak: f64,
    /// Offline fraction at trough activity (most users asleep).
    pub offline_at_trough: f64,
}

/// What workload to generate. Compile with [`WorkloadSpec::compile`].
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Total simulated users.
    pub population: u64,
    /// Number of cohorts the population is aggregated into. Clamped to at
    /// least 1; `cohorts == population` is exact per-user generation.
    pub cohorts: u32,
    /// Mean actions per user per simulated day (before diurnal shaping).
    pub actions_per_user_day: f64,
    /// Arrival-rate shape (diurnal × flash).
    pub model: DemandModel,
    /// Content catalogue size (Zipf ranks).
    pub ranks: usize,
    /// Zipf popularity exponent.
    pub zipf_alpha: f64,
    /// Object-size distribution.
    pub sizes: BoundedPareto,
    /// Session-length distribution (attached to each demand).
    pub sessions: LogNormalSessions,
    /// Scheduling tick: demand is integrated per tick and representatives
    /// are placed inside it by thinning.
    pub tick: SimDuration,
    /// Max representative demands per cohort per tick (weights absorb the
    /// rest). Clamped to at least 1.
    pub rep_cap: u32,
    /// Optional diurnal churn over the churnable node set.
    pub churn: Option<ChurnCurve>,
}

/// One weighted representative request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demand {
    /// Cohort that generated it.
    pub cohort: u32,
    /// Zipf content rank (0 = most popular).
    pub rank: u32,
    /// Object size in bytes.
    pub bytes: u64,
    /// How many real requests this representative stands for.
    pub weight: f64,
    /// Session length of the requesting user.
    pub session: SimDuration,
}

/// A scheduled workload action.
#[derive(Clone, Debug)]
pub enum WorkloadAction {
    /// Per-cohort tick summary: `count` aggregate requests this tick
    /// (including those absorbed into representative weights).
    Tick {
        /// Tick index.
        tick: u32,
        /// Cohort index.
        cohort: u32,
        /// Aggregate request count.
        count: u64,
    },
    /// A representative request to issue against the substrate.
    Demand(Demand),
    /// Diurnal churn: take these nodes offline.
    Kill {
        /// Nodes going offline.
        victims: Vec<NodeId>,
    },
    /// Diurnal churn: bring these nodes back.
    Revive {
        /// Nodes coming back online.
        victims: Vec<NodeId>,
    },
    /// Flash-crowd window edge (for traces and dashboards).
    FlashEdge {
        /// True at onset, false at the end of the decay.
        on: bool,
    },
}

/// One scheduled action at an offset from the driver's install instant.
#[derive(Clone, Debug)]
pub struct WorkloadEvent {
    /// Offset from install.
    pub at: SimDuration,
    /// The action.
    pub action: WorkloadAction,
}

/// A compiled, time-sorted workload schedule.
#[derive(Clone, Debug, Default)]
pub struct WorkloadSchedule {
    events: Vec<WorkloadEvent>,
}

impl WorkloadSchedule {
    /// The scheduled events, sorted by offset.
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of aggregate request counts across all ticks (the full
    /// population's demand, not just representatives).
    pub fn total_requests(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.action {
                WorkloadAction::Tick { count, .. } => count,
                _ => 0,
            })
            .sum()
    }

    /// The representative demands, in schedule order.
    pub fn demands(&self) -> impl Iterator<Item = &Demand> {
        self.events.iter().filter_map(|e| match &e.action {
            WorkloadAction::Demand(d) => Some(d),
            _ => None,
        })
    }
}

impl WorkloadSpec {
    /// Expand this spec into a concrete schedule over `horizon`, drawing
    /// all randomness from a fresh RNG seeded with `seed`. `churnable` is
    /// the node set diurnal churn may take offline (empty disables churn
    /// regardless of the spec). Pure: same inputs, same schedule.
    pub fn compile(
        &self,
        seed: u64,
        churnable: &[NodeId],
        horizon: SimDuration,
    ) -> WorkloadSchedule {
        let mut root = SimRng::new(seed);
        // Churn permutation first (prefix-of-permutation victim rule),
        // before any cohort stream forks — the derivation order is part of
        // the determinism contract pinned by the cohort-1 test.
        let mut order: Vec<NodeId> = churnable.to_vec();
        root.shuffle(&mut order);

        let zipf = ZipfAlias::new(self.ranks, self.zipf_alpha);
        let n_cohorts = self.cohorts.max(1) as u64;
        let rep_cap = self.rep_cap.max(1) as u64;
        let tick_us = self.tick.micros().max(1);
        let ticks = horizon.micros().div_ceil(tick_us);
        let rate_per_sec = self.actions_per_user_day / crate::arrivals::DAY_SECS;

        let mut events: Vec<WorkloadEvent> = Vec::new();

        // Flash edges.
        if let Some(f) = &self.model.flash {
            if f.start < horizon {
                events.push(WorkloadEvent {
                    at: f.start,
                    action: WorkloadAction::FlashEdge { on: true },
                });
                let end = f.end();
                if end < horizon {
                    events.push(WorkloadEvent {
                        at: end,
                        action: WorkloadAction::FlashEdge { on: false },
                    });
                }
            }
        }

        // Diurnal churn at tick boundaries: the offline fraction tracks
        // inverse activity between the configured peak/trough targets.
        if let Some(churn) = self.churn {
            if !order.is_empty() {
                let acts: Vec<f64> = (0..ticks)
                    .map(|k| self.model.multiplier((k * tick_us) as f64 / 1e6))
                    .collect();
                let lo = acts.iter().cloned().fold(f64::MAX, f64::min);
                let hi = acts.iter().cloned().fold(f64::MIN, f64::max);
                let span = (hi - lo).max(1e-12);
                let mut down = 0usize;
                for (k, &a) in acts.iter().enumerate() {
                    let a_norm = (a - lo) / span;
                    let target_frac = churn.offline_at_trough
                        + (churn.offline_at_peak - churn.offline_at_trough) * a_norm;
                    let target = ((target_frac.clamp(0.0, 1.0) * order.len() as f64).round()
                        as usize)
                        .min(order.len());
                    let at = SimDuration(k as u64 * tick_us);
                    if target > down {
                        events.push(WorkloadEvent {
                            at,
                            action: WorkloadAction::Kill {
                                victims: order[down..target].to_vec(),
                            },
                        });
                    } else if target < down {
                        // Offline set is always a prefix of `order`, so
                        // reviving the suffix restores exactly the most
                        // recently killed nodes.
                        events.push(WorkloadEvent {
                            at,
                            action: WorkloadAction::Revive {
                                victims: order[target..down].to_vec(),
                            },
                        });
                    }
                    down = target;
                }
            }
        }

        // Per-cohort demand: one independent stream per cohort, forked in
        // cohort order.
        let base = self.population / n_cohorts;
        let extra = self.population % n_cohorts;
        for c in 0..n_cohorts {
            let mut rng = root.fork(c);
            let users = base + u64::from(c < extra);
            if users == 0 {
                continue;
            }
            for k in 0..ticks {
                let t0_us = k * tick_us;
                let t1_us = (t0_us + tick_us).min(horizon.micros());
                let (t0, t1) = (t0_us as f64 / 1e6, t1_us as f64 / 1e6);
                let mean = users as f64 * rate_per_sec * (t1 - t0) * self.model.mean_over(t0, t1);
                let count = poisson_scaled(&mut rng, mean);
                events.push(WorkloadEvent {
                    at: SimDuration(t0_us),
                    action: WorkloadAction::Tick {
                        tick: k as u32,
                        cohort: c as u32,
                        count,
                    },
                });
                if count == 0 {
                    continue;
                }
                let reps = count.min(rep_cap);
                let weight = count as f64 / reps as f64;
                let bound = self.model.peak_over(t0, t1);
                for _ in 0..reps {
                    // Thinning: place the representative inside the tick
                    // with density proportional to the rate multiplier.
                    let mut offset = (t0 + t1) / 2.0;
                    for _ in 0..64 {
                        let cand = t0 + rng.f64() * (t1 - t0);
                        if rng.f64() * bound <= self.model.multiplier(cand) {
                            offset = cand;
                            break;
                        }
                    }
                    let demand = Demand {
                        cohort: c as u32,
                        rank: zipf.sample(&mut rng) as u32,
                        bytes: self.sizes.sample(&mut rng),
                        weight,
                        session: self.sessions.sample(&mut rng),
                    };
                    events.push(WorkloadEvent {
                        at: SimDuration::from_secs_f64(offset),
                        action: WorkloadAction::Demand(demand),
                    });
                }
            }
        }

        // Stable sort: equal instants keep push order (flash/churn edges,
        // then cohort ticks in cohort order, then their demands).
        events.sort_by_key(|e| e.at);
        WorkloadSchedule { events }
    }
}

/// Replays a [`WorkloadSchedule`] against a running simulation,
/// interleaving demand issuance and churn with normal event processing.
/// Every applied action is counted under `workload.*` metrics and (with
/// the `trace` feature) noted as a `workload.*` trace point.
pub struct WorkloadDriver {
    schedule: WorkloadSchedule,
    base: SimTime,
    next: usize,
}

impl WorkloadDriver {
    /// Install a schedule, anchoring all offsets at the current simulated
    /// time.
    pub fn install<P: Protocol>(sim: &Simulation<P>, schedule: WorkloadSchedule) -> WorkloadDriver {
        WorkloadDriver {
            schedule,
            base: sim.now(),
            next: 0,
        }
    }

    /// Actions applied so far.
    pub fn applied(&self) -> usize {
        self.next
    }

    /// Drop-in replacement for `sim.run_for(d)` that issues scheduled
    /// demand at its exact instants. `issue` is called for every
    /// representative [`Demand`]; translate it into a substrate operation
    /// there.
    pub fn run_for<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        d: SimDuration,
        issue: &mut dyn FnMut(&mut Simulation<P>, &Demand),
    ) {
        let limit = sim.now() + d;
        self.run_until(sim, limit, issue);
    }

    /// As [`WorkloadDriver::run_for`], but to an absolute deadline.
    pub fn run_until<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        limit: SimTime,
        issue: &mut dyn FnMut(&mut Simulation<P>, &Demand),
    ) {
        self.run_until_with(sim, limit, &mut |sim, t| sim.run_until(t), issue);
    }

    /// As [`WorkloadDriver::run_until`], but advancing the simulation
    /// through `advance` — pass a closure that delegates to a
    /// `ChaosController` to compose workload with a chaos schedule (both
    /// drive the same idempotent kill/revive path, so overlapping faults
    /// and churn are safe).
    pub fn run_until_with<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        limit: SimTime,
        advance: &mut dyn FnMut(&mut Simulation<P>, SimTime),
        issue: &mut dyn FnMut(&mut Simulation<P>, &Demand),
    ) {
        while let Some(event) = self.schedule.events.get(self.next) {
            let at = self.base + event.at;
            if at > limit {
                break;
            }
            advance(sim, at);
            let action = self.schedule.events[self.next].action.clone();
            self.next += 1;
            self.apply(sim, &action, issue);
        }
        advance(sim, limit);
    }

    fn apply<P: Protocol>(
        &mut self,
        sim: &mut Simulation<P>,
        action: &WorkloadAction,
        issue: &mut dyn FnMut(&mut Simulation<P>, &Demand),
    ) {
        match action {
            WorkloadAction::Tick { count, .. } => {
                sim.metrics_mut().incr("workload.requests", *count);
                sim.metrics_mut().incr("workload.ticks", 1);
                sim.trace_note("workload.tick", *count as f64);
            }
            WorkloadAction::Demand(d) => {
                sim.metrics_mut().incr("workload.reps", 1);
                sim.metrics_mut()
                    .sample("workload.session_secs", d.session.secs_f64());
                sim.trace_note("workload.demand", d.rank as f64);
                issue(sim, d);
            }
            WorkloadAction::Kill { victims } => {
                for &v in victims {
                    sim.kill(v);
                }
                sim.metrics_mut()
                    .incr("workload.churn_kills", victims.len() as u64);
                sim.trace_note("workload.churn_kill", victims.len() as f64);
            }
            WorkloadAction::Revive { victims } => {
                for &v in victims {
                    sim.revive(v);
                }
                sim.metrics_mut()
                    .incr("workload.churn_revives", victims.len() as u64);
                sim.trace_note("workload.churn_revive", victims.len() as f64);
            }
            WorkloadAction::FlashEdge { on } => {
                sim.metrics_mut().incr("workload.flash_edges", 1);
                sim.trace_note("workload.flash", u64::from(*on) as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{DiurnalCurve, FlashCrowd, ZoneMix};
    use agora_sim::{Ctx, DeviceClass};

    fn spec(population: u64, cohorts: u32) -> WorkloadSpec {
        WorkloadSpec {
            population,
            cohorts,
            actions_per_user_day: 20.0,
            model: DemandModel {
                zones: ZoneMix::single(DiurnalCurve::residential()),
                flash: Some(FlashCrowd {
                    start: SimDuration::from_secs(43_200),
                    ramp: SimDuration::from_secs(1800),
                    plateau: SimDuration::from_secs(3600),
                    decay: SimDuration::from_secs(1800),
                    peak: 8.0,
                }),
            },
            ranks: 64,
            zipf_alpha: 0.9,
            sizes: BoundedPareto::new(2_000, 2_000_000, 1.2),
            sessions: LogNormalSessions::new(300.0, 1.0),
            tick: SimDuration::from_mins(15),
            rep_cap: 2,
            churn: Some(ChurnCurve {
                offline_at_peak: 0.1,
                offline_at_trough: 0.5,
            }),
        }
    }

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn compile_is_deterministic() {
        let s = spec(100_000, 8);
        let a = s.compile(7, &ids(20), SimDuration::from_days(1));
        let b = s.compile(7, &ids(20), SimDuration::from_days(1));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at, y.at);
            assert_eq!(format!("{:?}", x.action), format!("{:?}", y.action));
        }
        let c = s.compile(8, &ids(20), SimDuration::from_days(1));
        assert_ne!(a.total_requests(), c.total_requests());
    }

    #[test]
    fn event_count_is_population_independent() {
        // The cohort claim: 100x the users, same engine event budget.
        let small = spec(10_000, 8).compile(7, &ids(20), SimDuration::from_days(1));
        let large = spec(1_000_000, 8).compile(7, &ids(20), SimDuration::from_days(1));
        // Demands are capped at rep_cap per cohort-tick; tick/churn/flash
        // actions are identical in number. Allow the small run fewer (a
        // low-rate tick can draw 0).
        assert!(
            large.len() <= small.len() + 200,
            "{} vs {}",
            large.len(),
            small.len()
        );
        assert!(
            large.total_requests() > small.total_requests() * 50,
            "population must scale aggregate demand"
        );
        // Weights absorb the difference.
        let wsum: f64 = large.demands().map(|d| d.weight).sum();
        let total = large.total_requests() as f64;
        assert!(
            wsum / total > 0.99 && wsum / total < 1.01,
            "weights {wsum} vs requests {total}"
        );
    }

    #[test]
    fn daily_volume_matches_population_rate() {
        let s = spec(1_000_000, 8);
        let sched = s.compile(3, &[], SimDuration::from_days(1));
        let expected_base = 1_000_000.0 * 20.0;
        let got = sched.total_requests() as f64;
        // The flash crowd adds volume on top of the diurnal-normalized
        // baseline: with an 8x peak over ~2h the overhead is ~10-40%.
        assert!(
            got > expected_base * 1.02 && got < expected_base * 1.6,
            "total {got} vs baseline {expected_base}"
        );
    }

    #[test]
    fn churn_tracks_activity_and_stays_prefix() {
        let s = spec(100_000, 4);
        let nodes = ids(30);
        let sched = s.compile(11, &nodes, SimDuration::from_days(1));
        let mut down: Vec<NodeId> = Vec::new();
        let mut max_down = 0usize;
        let mut min_down = usize::MAX;
        for e in sched.events() {
            match &e.action {
                WorkloadAction::Kill { victims } => {
                    for v in victims {
                        assert!(!down.contains(v), "double kill of {v:?}");
                        down.push(*v);
                    }
                }
                WorkloadAction::Revive { victims } => {
                    // LIFO: revives must be the tail of the down stack.
                    for v in victims.iter().rev() {
                        assert_eq!(down.pop().as_ref(), Some(v), "non-LIFO revive");
                    }
                }
                _ => {}
            }
            max_down = max_down.max(down.len());
            min_down = min_down.min(down.len());
        }
        // Trough takes ~half offline, peak only ~10%.
        assert!(max_down >= 12, "max down {max_down}");
        assert!(min_down <= 4, "min down {min_down}");
    }

    #[test]
    fn cohort_of_one_is_per_user_generation() {
        // Pin the derivation contract: with cohorts == population, compile
        // must behave exactly like a hand-rolled per-user generator that
        // forks one stream per user off the root and draws
        // Poisson/zipf/pareto/log-normal per tick. A refactor of the
        // cohort layer that changes per-user streams breaks this test.
        let population = 16u64;
        let mut s = spec(population, population as u32);
        s.rep_cap = u32::MAX; // every request is its own representative
        let horizon = SimDuration::from_hours(6);
        let churnable = ids(5);
        let sched = s.compile(99, &churnable, horizon);

        // Reference: the documented stream derivation, written out by hand.
        let mut root = SimRng::new(99);
        let mut order = churnable.clone();
        root.shuffle(&mut order);
        let zipf = ZipfAlias::new(s.ranks, s.zipf_alpha);
        let tick_us = s.tick.micros();
        let ticks = horizon.micros().div_ceil(tick_us);
        let rate = s.actions_per_user_day / crate::arrivals::DAY_SECS;
        let mut expected: Vec<Demand> = Vec::new();
        let mut expected_total = 0u64;
        for user in 0..population {
            let mut rng = root.fork(user);
            for k in 0..ticks {
                let t0 = (k * tick_us) as f64 / 1e6;
                let t1 = ((k * tick_us + tick_us).min(horizon.micros())) as f64 / 1e6;
                let mean = 1.0 * rate * (t1 - t0) * s.model.mean_over(t0, t1);
                let count = poisson_scaled(&mut rng, mean);
                expected_total += count;
                let bound = s.model.peak_over(t0, t1);
                for _ in 0..count {
                    for _ in 0..64 {
                        let cand = t0 + rng.f64() * (t1 - t0);
                        if rng.f64() * bound <= s.model.multiplier(cand) {
                            break;
                        }
                    }
                    expected.push(Demand {
                        cohort: user as u32,
                        rank: zipf.sample(&mut rng) as u32,
                        bytes: s.sizes.sample(&mut rng),
                        weight: 1.0,
                        session: s.sessions.sample(&mut rng),
                    });
                }
            }
        }
        assert_eq!(sched.total_requests(), expected_total);
        let mut got: Vec<Demand> = sched.demands().copied().collect();
        let keyfn = |d: &Demand| (d.cohort, d.rank, d.bytes, d.session);
        got.sort_by_key(keyfn);
        expected.sort_by_key(keyfn);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g, e);
        }
    }

    // A trivial protocol for driver integration tests.
    struct Null;
    impl Protocol for Null {
        type Msg = ();
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
    }

    #[test]
    fn driver_applies_schedule_and_counts() {
        let s = spec(50_000, 4);
        let mut sim: Simulation<Null> = Simulation::new(1);
        let nodes: Vec<NodeId> = (0..10)
            .map(|_| sim.add_node(Null, DeviceClass::PersonalComputer))
            .collect();
        let horizon = SimDuration::from_days(1);
        let sched = s.compile(5, &nodes, horizon);
        let total = sched.total_requests();
        let n_events = sched.len();
        let mut driver = WorkloadDriver::install(&sim, sched);
        let mut issued = 0u64;
        let mut weighted = 0.0f64;
        driver.run_for(&mut sim, horizon, &mut |_sim, d| {
            issued += 1;
            weighted += d.weight;
        });
        assert_eq!(driver.applied(), n_events);
        assert_eq!(sim.metrics().counter("workload.requests"), total);
        assert_eq!(sim.metrics().counter("workload.reps"), issued);
        assert!((weighted - total as f64).abs() / (total as f64) < 0.01);
        assert_eq!(sim.metrics().counter("workload.flash_edges"), 2);
        assert!(sim.metrics().counter("workload.churn_kills") > 0);
        assert!(sim.metrics().counter("workload.churn_revives") > 0);
        // Diurnal churn ends where it started (same activity at t=0 and
        // t=24h), so kills and revives nearly balance; the last tick's
        // state may leave a prefix down.
        let kills = sim.metrics().counter("workload.churn_kills");
        let revives = sim.metrics().counter("workload.churn_revives");
        assert!(
            kills >= revives && kills - revives <= 10,
            "{kills} vs {revives}"
        );
    }

    #[test]
    fn driver_churn_composes_with_manual_kill_revive() {
        // The idempotence contract: a node killed by chaos and again by
        // workload churn, then revived by both, ends up up exactly once.
        let s = spec(10_000, 2);
        let mut sim: Simulation<Null> = Simulation::new(2);
        let nodes: Vec<NodeId> = (0..6)
            .map(|_| sim.add_node(Null, DeviceClass::PersonalComputer))
            .collect();
        let sched = s.compile(3, &nodes, SimDuration::from_days(1));
        let mut driver = WorkloadDriver::install(&sim, sched);
        let mut step = 0u32;
        driver.run_until_with(
            &mut sim,
            SimTime::ZERO + SimDuration::from_days(1),
            &mut |sim, t| {
                // An interfering "chaos" layer that randomly kills and
                // revives the same nodes between workload actions.
                step += 1;
                if step.is_multiple_of(7) {
                    sim.kill(nodes[0]);
                }
                if step.is_multiple_of(11) {
                    sim.revive(nodes[0]);
                }
                sim.run_until(t);
            },
            &mut |_, _| {},
        );
        // No panic, and every node can be revived to a clean up state.
        for &n in &nodes {
            sim.revive(n);
            assert!(sim.is_up(n));
        }
    }
}

//! # agora-workload — population-scale demand and churn generation
//!
//! The paper's feasibility argument (§5, Table 3) is about *populations*:
//! hundreds of millions of user devices with consumer-grade availability.
//! This crate generates what those populations do — heavy-tailed content
//! popularity, diurnal activity with timezone structure, flash crowds, and
//! activity-correlated churn — as a deterministic, seed-derived schedule
//! that replays identically at any harness thread count.
//!
//! The pieces:
//!
//! * [`samplers`] — Zipf(α) popularity with an O(1) [`AliasTable`],
//!   log-normal session lengths, bounded-Pareto object sizes, and a
//!   Poisson sampler that stays O(1) at cohort-scale means;
//! * [`arrivals`] — per-timezone [`DiurnalCurve`]s mixed into a global
//!   rate multiplier, plus the [`FlashCrowd`] ramp/plateau/decay
//!   primitive, composed in a [`DemandModel`];
//! * [`driver`] — the [`Cohort`](crate::driver)-scaled compiler
//!   ([`WorkloadSpec::compile`]) producing a [`WorkloadSchedule`], and the
//!   [`WorkloadDriver`] that replays it against a simulation the same way
//!   `ChaosController` replays fault schedules — O(cohorts) engine events
//!   per tick regardless of population, with `cohorts == population` as
//!   the exact per-user escape hatch;
//! * [`load`] — the pinned paper-default load constants shared with the
//!   small experiments (E3/E4/E5/E8) so their baselines stay
//!   byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod driver;
pub mod load;
pub mod samplers;

pub use arrivals::{DemandModel, DiurnalCurve, FlashCrowd, ZoneMix, DAY_SECS};
pub use driver::{
    ChurnCurve, Demand, WorkloadAction, WorkloadDriver, WorkloadEvent, WorkloadSchedule,
    WorkloadSpec,
};
pub use load::{CommLoad, StorageLoad};
pub use samplers::{
    poisson_scaled, zipf_reference, AliasTable, BoundedPareto, LogNormalSessions, ZipfAlias,
    NORMAL_CUTOVER,
};

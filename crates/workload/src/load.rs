//! The fixed paper-default load points used by the small experiments.
//!
//! E1–E15 drive the substrates with small constant-rate loads whose exact
//! values are part of the regression contract: `BENCH_harness.json` rows
//! must stay byte-identical across refactors. Those constants used to be
//! scattered inline through `exp_comm.rs` / `exp_storage.rs`; they now
//! live here, next to the distributions that generalize them, so the
//! workload engine and the legacy experiments agree on what "one unit of
//! load" means. **Changing any value here changes checked-in baselines.**

/// The group-communication load shape shared by E3/E4 (and echoed by the
/// larger E15/E16 clients): a small federation with a handful of posting
/// and reading clients.
#[derive(Clone, Copy, Debug)]
pub struct CommLoad {
    /// Federated instances (and the failure-fraction denominator).
    pub instances: usize,
    /// Clients homed on each instance.
    pub clients_per_instance: usize,
    /// Posts per client over the run.
    pub posts_per_client: usize,
    /// History reads per client at the end of the run.
    pub reads_per_client: usize,
    /// Post payload size in bytes.
    pub post_bytes: u64,
}

impl CommLoad {
    /// The values E3/E4 have used since the first harness baseline.
    pub const fn paper_default() -> CommLoad {
        CommLoad {
            instances: 5,
            clients_per_instance: 4,
            posts_per_client: 3,
            reads_per_client: 3,
            post_bytes: 200,
        }
    }

    /// Total client count.
    pub const fn clients(&self) -> usize {
        self.instances * self.clients_per_instance
    }
}

/// The storage load shape shared by E5/E8: one erasure-coded object,
/// repeatedly fetched, plus the sealing/audit probe sizes.
#[derive(Clone, Copy, Debug)]
pub struct StorageLoad {
    /// The stored object (E8's put) in bytes.
    pub object_bytes: usize,
    /// The audited object in E5's live-protocol phase, in bytes.
    pub audit_object_bytes: usize,
    /// The sealing-game input in E5's PoRep phase, in bytes.
    pub seal_probe_bytes: usize,
    /// GETs issued against the object per run.
    pub gets: usize,
}

impl StorageLoad {
    /// The values E5/E8 have used since the first harness baseline.
    pub const fn paper_default() -> StorageLoad {
        StorageLoad {
            object_bytes: 1_000_000,
            audit_object_bytes: 60_000,
            seal_probe_bytes: 500_000,
            gets: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_pinned() {
        // These values are baked into BENCH_harness.json; a change here
        // must be a deliberate baseline regeneration, never an accident.
        let c = CommLoad::paper_default();
        assert_eq!(
            (c.instances, c.clients_per_instance, c.posts_per_client),
            (5, 4, 3)
        );
        assert_eq!((c.reads_per_client, c.post_bytes), (3, 200));
        assert_eq!(c.clients(), 20);
        let s = StorageLoad::paper_default();
        assert_eq!(s.object_bytes, 1_000_000);
        assert_eq!(s.audit_object_bytes, 60_000);
        assert_eq!(s.seal_probe_bytes, 500_000);
        assert_eq!(s.gets, 8);
    }
}

//! Deterministic samplers for population-scale demand.
//!
//! Everything here draws from a caller-supplied [`SimRng`] stream and is a
//! pure function of that stream, so workload generation inherits the
//! simulator's reproducibility contract: same seed, same demand, on every
//! platform and at every harness thread count.

use agora_sim::{SimDuration, SimRng, ZipfTable};

/// Walker/Vose alias table: O(n) to build, O(1) per draw from an arbitrary
/// discrete distribution. This is the hot-loop replacement for
/// [`ZipfTable`]'s O(log n) inverse-CDF binary search — at a million draws
/// per simulated day the difference shows up in `BENCH_perf.json`.
///
/// Construction is deterministic: the small/large worklists are filled in
/// index order and consumed LIFO, so the same weights always produce the
/// same table.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build a table over `weights` (need not be normalized). Panics on an
    /// empty, non-finite, or non-positive-total weight vector.
    pub fn new(weights: &[f64]) -> AliasTable {
        let n = weights.len();
        assert!(n > 0, "alias table over empty domain");
        assert!(n <= u32::MAX as usize, "alias table too large");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "alias table needs a positive finite total weight"
        );
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            assert!(p >= 0.0, "negative weight at rank {i}");
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Float residue: whatever is left in either list rounds to prob 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true: construction panics on 0).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome: exactly two RNG draws, no search.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.below_usize(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Zipf(α) popularity over ranks `[0, n)` with O(1) draws via an alias
/// table. Rank 0 is the most popular object.
#[derive(Clone, Debug)]
pub struct ZipfAlias {
    table: AliasTable,
    alpha: f64,
}

impl ZipfAlias {
    /// Build over `n` ranks with exponent `alpha`.
    pub fn new(n: usize, alpha: f64) -> ZipfAlias {
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
        ZipfAlias {
            table: AliasTable::new(&weights),
            alpha,
        }
    }

    /// The configured exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.table.len()
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        self.table.sample(rng)
    }
}

/// Log-normal session durations, parameterized by the median (the
/// log-space mean is `ln(median)`) and the log-space σ. Heavy right tail:
/// most sessions are short, a few run for hours — the shape measured for
/// consumer devices in the IPFS / Gnutella availability literature.
#[derive(Clone, Copy, Debug)]
pub struct LogNormalSessions {
    mu: f64,
    sigma: f64,
}

impl LogNormalSessions {
    /// Construct from the median session length in seconds and log-space σ.
    pub fn new(median_secs: f64, sigma: f64) -> LogNormalSessions {
        assert!(median_secs > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormalSessions {
            mu: median_secs.ln(),
            sigma,
        }
    }

    /// The distribution mean in seconds: `exp(μ + σ²/2)`.
    pub fn mean_secs(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draw one session duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.log_normal(self.mu, self.sigma))
    }
}

/// Bounded Pareto object sizes in bytes: power-law body with shape `alpha`
/// truncated to `[lo, hi]`, via the closed-form inverse CDF
/// `x = L · (1 − u(1 − (L/H)^α))^(−1/α)`. The truncation keeps single
/// draws from dwarfing the simulated day while preserving the heavy tail
/// that concentrates bytes on a few objects.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Construct with bounds `lo < hi` (bytes) and shape `alpha > 0`.
    pub fn new(lo: u64, hi: u64, alpha: f64) -> BoundedPareto {
        assert!(lo > 0 && lo < hi, "need 0 < lo < hi");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto {
            lo: lo as f64,
            hi: hi as f64,
            alpha,
        }
    }

    /// The distribution mean in bytes (closed form).
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.lo, self.hi, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1 limit: L·H/(H−L) · ln(H/L).
            return l * h / (h - l) * (h / l).ln();
        }
        let la = l.powf(a);
        (la / (1.0 - (l / h).powf(a)))
            * (a / (a - 1.0))
            * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    /// Draw one size in bytes, always within `[lo, hi]`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let ratio = (self.lo / self.hi).powf(self.alpha);
        let x = self.lo / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        x.clamp(self.lo, self.hi) as u64
    }
}

/// Mean above which [`poisson_scaled`] switches from Knuth sampling to the
/// normal approximation.
pub const NORMAL_CUTOVER: f64 = 64.0;

/// Poisson count that stays usable at cohort scale. [`SimRng::poisson`]
/// is Knuth's product-of-uniforms algorithm — O(mean) RNG draws, which at
/// a 10⁴-request tick would consume the stream wholesale. Below
/// [`NORMAL_CUTOVER`] we delegate to it; above, we use the normal
/// approximation N(mean, √mean) rounded and clamped at zero. The switch is
/// exact in the aggregate-demand sense: a Poisson with mean m ≥ 64 is
/// within O(1/√m) total-variation distance of its normal approximation,
/// which is the cohort aggregation error bound documented in DESIGN.md §13.
pub fn poisson_scaled(rng: &mut SimRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < NORMAL_CUTOVER {
        rng.poisson(mean)
    } else {
        rng.normal(mean, mean.sqrt()).round().max(0.0) as u64
    }
}

/// Re-exported for callers that want the O(log n) reference sampler to
/// compare against (the bench group does exactly that).
pub fn zipf_reference(n: usize, alpha: f64) -> ZipfTable {
    ZipfTable::new(n, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_matches_weights() {
        let weights = [5.0, 3.0, 1.0, 1.0];
        let table = AliasTable::new(&weights);
        let mut rng = SimRng::new(1);
        let mut counts = [0u64; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let observed = counts[i] as f64 / n as f64;
            let expected = w / total;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed:.4} expected {expected:.4}"
            );
        }
    }

    #[test]
    fn alias_is_deterministic() {
        let weights: Vec<f64> = (0..100).map(|i| 1.0 / (i + 1) as f64).collect();
        let t1 = AliasTable::new(&weights);
        let t2 = AliasTable::new(&weights);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(t1.sample(&mut a), t2.sample(&mut b));
        }
    }

    #[test]
    fn alias_single_outcome() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = SimRng::new(3);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn zipf_alias_agrees_with_cdf_reference() {
        // Same distribution, different sampling algorithm: compare observed
        // frequencies from many draws, not draw-for-draw values.
        let n = 50;
        let alpha = 1.0;
        let alias = ZipfAlias::new(n, alpha);
        let cdf = ZipfTable::new(n, alpha);
        let mut ra = SimRng::new(11);
        let mut rc = SimRng::new(12);
        let draws = 200_000;
        let mut ca = vec![0u64; n];
        let mut cc = vec![0u64; n];
        for _ in 0..draws {
            ca[alias.sample(&mut ra)] += 1;
            cc[cdf.sample(&mut rc)] += 1;
        }
        for i in 0..10 {
            let fa = ca[i] as f64 / draws as f64;
            let fc = cc[i] as f64 / draws as f64;
            assert!(
                (fa - fc).abs() < 0.01,
                "rank {i}: alias {fa:.4} vs cdf {fc:.4}"
            );
        }
        assert_eq!(alias.ranks(), n);
        assert_eq!(alias.alpha(), alpha);
    }

    #[test]
    fn sessions_median_and_tail() {
        let s = LogNormalSessions::new(300.0, 1.0);
        let mut rng = SimRng::new(21);
        let mut samples: Vec<f64> = (0..20_000).map(|_| s.sample(&mut rng).secs_f64()).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[samples.len() / 2];
        assert!((median - 300.0).abs() < 20.0, "median {median}");
        // Heavy tail: mean well above median.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean > median * 1.3, "mean {mean} median {median}");
        assert!((s.mean_secs() - 300.0 * (0.5f64).exp()).abs() < 1.0);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let p = BoundedPareto::new(1_000, 10_000_000, 1.2);
        let mut rng = SimRng::new(31);
        let mut below_10k = 0u64;
        for _ in 0..20_000 {
            let v = p.sample(&mut rng);
            assert!((1_000..=10_000_000).contains(&v), "out of bounds: {v}");
            if v < 10_000 {
                below_10k += 1;
            }
        }
        // Power-law body: most mass near the lower bound.
        assert!(below_10k > 15_000, "only {below_10k} draws below 10 kB");
    }

    #[test]
    fn poisson_scaled_means_track_across_cutover() {
        let mut rng = SimRng::new(41);
        for &mean in &[0.5, 8.0, 63.0, 64.0, 1_000.0, 250_000.0] {
            let n = 2_000;
            let sum: u64 = (0..n).map(|_| poisson_scaled(&mut rng, mean)).sum();
            let observed = sum as f64 / n as f64;
            let tol = (mean / n as f64).sqrt() * 6.0 + 0.05;
            assert!(
                (observed - mean).abs() < tol.max(mean * 0.02),
                "mean {mean}: observed {observed}"
            );
        }
        assert_eq!(poisson_scaled(&mut rng, 0.0), 0);
        assert_eq!(poisson_scaled(&mut rng, -3.0), 0);
    }

    #[test]
    fn poisson_scaled_large_mean_is_cheap() {
        // The whole point of the cutover: a 1M-mean draw must not consume
        // a million RNG draws. Two draws (Box–Muller) is the budget.
        let mut a = SimRng::new(51);
        let mut b = SimRng::new(51);
        let _ = poisson_scaled(&mut a, 1_000_000.0);
        b.next_u64();
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64(), "normal path must use 2 draws");
    }
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Statistical properties of the workload engine: Zipf slope, diurnal
//! volume conservation, cohort-1 exactness, and churn/chaos idempotence.

use agora_sim::{Ctx, DeviceClass, NodeId, Protocol, SimDuration, SimRng, Simulation};
use agora_workload::{
    BoundedPareto, ChurnCurve, DemandModel, DiurnalCurve, LogNormalSessions, WorkloadAction,
    WorkloadDriver, WorkloadSpec, ZipfAlias, ZoneMix,
};
use proptest::prelude::*;

struct Null;

impl Protocol for Null {
    type Msg = ();
    fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}
}

fn spec(population: u64, cohorts: u32, rep_cap: u32, flash: bool) -> WorkloadSpec {
    WorkloadSpec {
        population,
        cohorts,
        actions_per_user_day: 20.0,
        model: DemandModel {
            zones: ZoneMix::global_three_region(DiurnalCurve::residential()),
            flash: None,
        },
        ranks: 64,
        zipf_alpha: 0.9,
        sizes: BoundedPareto::new(2_000, 1_000_000, 1.3),
        sessions: LogNormalSessions::new(300.0, 1.0),
        tick: SimDuration::from_mins(15),
        rep_cap,
        churn: if flash {
            Some(ChurnCurve {
                offline_at_peak: 0.1,
                offline_at_trough: 0.5,
            })
        } else {
            None
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Log-log rank-frequency slope of alias-table Zipf samples tracks -α.
    #[test]
    fn zipf_rank_frequency_slope_matches_alpha(
        seed in any::<u64>(),
        alpha in 0.7f64..1.3,
    ) {
        const RANKS: usize = 512;
        const SAMPLES: usize = 200_000;
        let zipf = ZipfAlias::new(RANKS, alpha);
        let mut rng = SimRng::new(seed);
        let mut counts = vec![0u64; RANKS];
        for _ in 0..SAMPLES {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Least-squares fit of ln(freq) vs ln(rank+1) over the well-sampled
        // head (tail ranks are too noisy at this sample size).
        let head: Vec<(f64, f64)> = counts
            .iter()
            .take(64)
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        prop_assume!(head.len() >= 32);
        let n = head.len() as f64;
        let (sx, sy): (f64, f64) = head.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
        let (sxx, sxy): (f64, f64) = head
            .iter()
            .fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        prop_assert!(
            (slope + alpha).abs() < 0.08,
            "fitted slope {slope} vs -α = {}",
            -alpha
        );
    }

    /// The diurnal zone mix conserves volume: a compiled day represents
    /// population · actions_per_user_day requests (Poisson noise aside),
    /// and the per-demand weights sum back to exactly that request count.
    #[test]
    fn diurnal_day_integrates_to_daily_volume(seed in any::<u64>()) {
        let s = spec(200_000, 8, 2, false);
        let sched = s.compile(seed, &[], SimDuration::from_days(1));
        let total = sched.total_requests();
        let expected = 200_000.0 * 20.0;
        prop_assert!(
            (total as f64 - expected).abs() < 0.02 * expected,
            "total {total} vs expected {expected}"
        );
        let weighted: f64 = sched
            .events()
            .iter()
            .filter_map(|e| match &e.action {
                WorkloadAction::Demand(d) => Some(d.weight),
                _ => None,
            })
            .sum();
        prop_assert!(
            (weighted - total as f64).abs() / (total as f64) < 1e-9,
            "weights {weighted} vs requests {total}"
        );
    }

    /// Cohort size 1 is the exact per-node escape hatch: every demand is a
    /// single user's action with weight exactly 1, and the demand count
    /// equals the represented request count.
    #[test]
    fn cohort_of_one_is_exact(seed in any::<u64>(), population in 4u64..32) {
        let s = spec(population, population as u32, u32::MAX, false);
        let sched = s.compile(seed, &[], SimDuration::from_days(1));
        prop_assert_eq!(sched.demands().count() as u64, sched.total_requests());
        for d in sched.demands() {
            prop_assert_eq!(d.weight, 1.0);
        }
    }

    /// Workload churn composes with chaos-style manual kill/revive: the
    /// kill/revive path is idempotent, so arbitrary interleaving leaves
    /// every node revivable and never double-counts a transition.
    #[test]
    fn churn_and_chaos_interleaving_is_idempotent(
        seed in any::<u64>(),
        chaos_mask in any::<u32>(),
    ) {
        let mut sim: Simulation<Null> = Simulation::new(seed);
        let nodes: Vec<NodeId> = (0..16)
            .map(|_| sim.add_node(Null, DeviceClass::PersonalComputer))
            .collect();
        sim.run_for(SimDuration::from_secs(1));
        let sched = spec(20_000, 4, 2, true).compile(seed, &nodes, SimDuration::from_days(1));
        let mut driver = WorkloadDriver::install(&sim, sched);
        let base = sim.now();
        for hour in 0..24u64 {
            // Chaos interference: redundantly kill or revive a mask-chosen
            // node between workload steps.
            let victim = nodes[(hour % 16) as usize];
            if chaos_mask & (1 << hour) != 0 {
                sim.kill(victim);
                sim.kill(victim); // idempotent double-kill
            } else {
                sim.revive(victim);
                sim.revive(victim);
            }
            driver.run_until(
                &mut sim,
                base + SimDuration::from_hours(hour + 1),
                &mut |_, _| {},
            );
        }
        for &n in &nodes {
            sim.revive(n);
            prop_assert!(sim.is_up(n));
        }
        let m = sim.metrics();
        let down = m.counter("churn.down");
        let up = m.counter("churn.up");
        prop_assert!(up <= down + 16, "up {up} down {down}");
    }
}

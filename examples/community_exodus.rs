//! Scenario: a community gets deplatformed and flees to the architectures
//! the paper surveys — the §1/§3.2 motivation, dramatized with real runs.
//!
//! Act I   — life under the feudal lord: great delivery, total surveillance,
//!           then the operator bans the community.
//! Act II  — exodus to a federation: per-instance rules, but the OStatus-
//!           style instance is a single point of failure.
//! Act III — Matrix-style replication keeps the history alive.
//! Act IV  — the privacy purists go socially-aware P2P and pay in
//!           availability.
//!
//! Run with: `cargo run --release --example community_exodus`

use agora::comm::{
    CentralNode, FedNode, ModerationPolicy, PostLabel, ReadResult, ReplicationMode, SocialNode,
};
use agora::sim::{DeviceClass, NodeId, SimDuration, Simulation};

fn main() {
    act1_centralized();
    act2_single_home();
    act3_replicated();
    act4_social();
    println!("\nMoral (§2): every architecture buys some properties by selling others.");
}

fn act1_centralized() {
    println!("— Act I: the feudal platform —");
    let mut sim = Simulation::new(1);
    let server = sim.add_node(
        CentralNode::server(ModerationPolicy::platform_default()),
        DeviceClass::DatacenterServer,
    );
    let members: Vec<NodeId> = (0..8)
        .map(|_| sim.add_node(CentralNode::client(server), DeviceClass::PersonalComputer))
        .collect();
    for &m in &members {
        sim.with_ctx(m, |n, ctx| n.join(ctx, 1));
    }
    sim.run_for(SimDuration::from_secs(2));
    for &m in &members {
        sim.with_ctx(m, |n, ctx| {
            n.post(ctx, 1, 300, PostLabel::Legit);
        });
    }
    sim.run_for(SimDuration::from_secs(10));
    let delivered = sim.metrics().counter("comm.posts_delivered");
    let observed = sim.metrics().counter("comm.metadata_observed");
    println!("  8 members post once: {delivered} deliveries, operator observed {observed} posts");

    // The operator decides the community "misbehaves".
    for &m in &members {
        sim.node_mut(server).ban(m);
    }
    for &m in &members {
        sim.with_ctx(m, |n, ctx| {
            n.post(ctx, 1, 300, PostLabel::Legit);
        });
    }
    sim.run_for(SimDuration::from_secs(10));
    let after = sim.metrics().counter("comm.posts_delivered");
    println!(
        "  after the ban: {} further deliveries — \"access can be unequivocally revoked\" (§3.2)\n",
        after - delivered
    );
}

fn act2_single_home() {
    println!("— Act II: OStatus-style federation —");
    let mut sim = Simulation::new(2);
    let i0 = NodeId(0);
    let i1 = NodeId(1);
    sim.add_node(
        FedNode::instance(
            vec![i1],
            ReplicationMode::SingleHome,
            ModerationPolicy::spam_only(),
        ),
        DeviceClass::DatacenterServer,
    );
    sim.add_node(
        FedNode::instance(
            vec![i0],
            ReplicationMode::SingleHome,
            ModerationPolicy::spam_only(),
        ),
        DeviceClass::DatacenterServer,
    );
    let home0: Vec<NodeId> = (0..4)
        .map(|_| sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer))
        .collect();
    let remote = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
    for &c in home0.iter().chain([remote].iter()) {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    for &c in &home0 {
        sim.with_ctx(c, |n, ctx| n.post(ctx, 1, 300, PostLabel::Legit));
    }
    sim.run_for(SimDuration::from_secs(10));
    println!(
        "  community rebuilt on its own instance; {} deliveries, nobody can ban them globally",
        sim.metrics().counter("comm.posts_delivered")
    );
    sim.kill(i0);
    let op = sim.with_ctx(remote, |n, ctx| n.read(ctx, 1)).unwrap();
    sim.run_for(SimDuration::from_secs(30));
    let read = sim.node_mut(remote).take_read(op);
    println!(
        "  ...but the origin instance dies and remote reads return {:?} — \"entire instances \
         inaccessible if they fail\" (§3.2)\n",
        read.unwrap_or(ReadResult::Unavailable)
    );
}

fn act3_replicated() {
    println!("— Act III: Matrix-style replication —");
    let mut sim = Simulation::new(3);
    let i0 = NodeId(0);
    let i1 = NodeId(1);
    sim.add_node(
        FedNode::instance(
            vec![i1],
            ReplicationMode::FullReplication,
            ModerationPolicy::spam_only(),
        ),
        DeviceClass::DatacenterServer,
    );
    sim.add_node(
        FedNode::instance(
            vec![i0],
            ReplicationMode::FullReplication,
            ModerationPolicy::spam_only(),
        ),
        DeviceClass::DatacenterServer,
    );
    let author = sim.add_node(FedNode::client(i0), DeviceClass::PersonalComputer);
    let remote = sim.add_node(FedNode::client(i1), DeviceClass::PersonalComputer);
    for &c in &[author, remote] {
        sim.with_ctx(c, |n, ctx| n.join(ctx, 1));
        sim.run_for(SimDuration::from_millis(100));
    }
    sim.with_ctx(author, |n, ctx| n.post(ctx, 1, 300, PostLabel::Legit));
    sim.run_for(SimDuration::from_secs(5));
    sim.kill(i0);
    let op = sim.with_ctx(remote, |n, ctx| n.read(ctx, 1)).unwrap();
    sim.run_for(SimDuration::from_secs(30));
    println!(
        "  origin dies again, but the remote instance replicated the room: read = {:?}",
        sim.node_mut(remote).take_read(op).unwrap()
    );
    println!(
        "  cost: every relaying instance observed the metadata ({} observations)\n",
        sim.metrics().counter("comm.metadata_observed")
    );
}

fn act4_social() {
    println!("— Act IV: socially-aware P2P —");
    let mut sim = Simulation::new(4);
    let ids: Vec<NodeId> = (0..3u32).map(NodeId).collect();
    sim.add_node(
        SocialNode::new(vec![ids[1], ids[2]], false),
        DeviceClass::PersonalComputer,
    );
    sim.add_node(
        SocialNode::new(vec![ids[0], ids[2]], false),
        DeviceClass::PersonalComputer,
    );
    sim.add_node(
        SocialNode::new(vec![ids[0], ids[1]], false),
        DeviceClass::PersonalComputer,
    );
    sim.with_ctx(ids[0], |n, ctx| n.post(ctx, 300, PostLabel::Legit));
    sim.run_for(SimDuration::from_secs(5));
    println!(
        "  posts flow only to chosen friends ({} deliveries, {} server observations)",
        sim.metrics().counter("comm.posts_delivered"),
        sim.metrics().counter("comm.metadata_observed"),
    );
    sim.kill(ids[0]);
    let op = sim
        .with_ctx(ids[1], |n, ctx| n.read_feed(ctx, ids[0]))
        .unwrap();
    sim.run_for(SimDuration::from_mins(1));
    println!(
        "  owner goes offline: friend's read = {:?} — privacy bought with availability (§3.2)",
        sim.node_mut(ids[1]).take_read(op).unwrap()
    );
}

//! The experiment harness: regenerate every table and run every experiment
//! of EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release --example experiments            # run everything
//!   cargo run --release --example experiments -- t3 e2   # run a subset
//!
//! Ids: t1 t2 t3 e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 props zooko

use agora::experiments::{
    e10_federated_failover, e11_guerrilla_relay, e12_moderation_tension, e13_financing_gap,
    e14_usenet_collapse, e1_naming_tradeoff, e2_naming_attacks, e3_groupcomm_availability,
    e4_privacy, e5_storage_proofs, e6_durability, e7_web_availability, e8_quality_vs_quantity,
    e9_chain_costs, t1_taxonomy, t2_storage_systems, t3_feasibility,
};

const SEED: u64 = 20171130; // HotNets-XVI, day one

fn run(id: &str) {
    match id {
        "t1" => println!("{}\n", t1_taxonomy()),
        "t2" => println!("{}\n", t2_storage_systems()),
        "t3" => println!("{}\n", t3_feasibility()),
        "e1" => println!("{}\n", e1_naming_tradeoff(SEED).1),
        "e2" => println!("{}\n", e2_naming_attacks(SEED).1),
        "e3" => {
            for f in [0.0, 0.2, 0.4] {
                println!("{}\n", e3_groupcomm_availability(SEED, f).1);
            }
        }
        "e4" => println!("{}\n", e4_privacy(SEED).1),
        "e5" => println!("{}\n", e5_storage_proofs(SEED).1),
        "e6" => println!("{}\n", e6_durability(SEED).1),
        "e7" => println!("{}\n", e7_web_availability(SEED).1),
        "e8" => println!("{}\n", e8_quality_vs_quantity(SEED).1),
        "e9" => println!("{}\n", e9_chain_costs(SEED).1),
        "e10" => println!("{}\n", e10_federated_failover(SEED).1),
        "e11" => println!("{}\n", e11_guerrilla_relay(SEED).1),
        "e12" => println!("{}\n", e12_moderation_tension(SEED).1),
        "e13" => println!("{}\n", e13_financing_gap(SEED).1),
        "e14" => println!("{}\n", e14_usenet_collapse(SEED).1),
        "props" => println!("{}", agora::render_property_matrix()),
        "zooko" => println!("{}", agora::naming_zooko_table()),
        other => eprintln!("unknown experiment id '{other}'"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "t1", "t2", "t3", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
        "e12", "e13", "e14", "props", "zooko",
    ];
    if args.is_empty() {
        for id in all {
            run(id);
        }
    } else {
        for id in &args {
            run(id);
        }
    }
}

//! Scenario: a hostless web app's life cycle — publish, seed, survive the
//! origin, fork, merge (§3.4: ZeroNet + Beaker mechanics).
//!
//! Run with: `cargo run --release --example hostless_site`

use agora::sim::{DeviceClass, SimDuration, Simulation};
use agora::web::{merge_files, SitePublisher, SwarmNode, VisitResult};

fn main() {
    println!("— hostless web app life cycle —\n");

    // Publish.
    let mut publisher = SitePublisher::new(b"zine-collective");
    let v1 = publisher.publish(&[
        ("index.html", b"<h1>issue #1</h1>".as_slice()),
        ("zine.css", b"body { font-family: monospace }".as_slice()),
    ]);
    let site = publisher.site_id();
    println!(
        "published site {} v{} ({} pieces, signed)",
        site.short(),
        v1.signed.manifest.version,
        v1.pieces.len()
    );

    // Swarm: origin + tracker + visitors.
    let mut sim = Simulation::new(7);
    let tracker = sim.add_node(SwarmNode::tracker(), DeviceClass::DatacenterServer);
    let origin = sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer);
    let visitors: Vec<_> = (0..4)
        .map(|_| sim.add_node(SwarmNode::peer(tracker), DeviceClass::PersonalComputer))
        .collect();
    sim.with_ctx(origin, |n, ctx| n.host_site(ctx, &v1));
    sim.run_for(SimDuration::from_secs(2));

    // Two readers visit while the origin is up.
    for &v in &visitors[..2] {
        let op = sim.with_ctx(v, |n, ctx| n.start_visit(ctx, site)).unwrap();
        sim.run_for(SimDuration::from_mins(2));
        if let Some(VisitResult::Ok { bytes, .. }) = sim.node_mut(v).take_result(op) {
            println!("visitor {v} fetched the site ({bytes} bytes) and now seeds it");
        }
    }

    // The origin's laptop is closed forever.
    sim.kill(origin);
    println!("\norigin went offline permanently...");
    let late = visitors[2];
    let op = sim
        .with_ctx(late, |n, ctx| n.start_visit(ctx, site))
        .unwrap();
    sim.run_for(SimDuration::from_mins(3));
    match sim.node_mut(late).take_result(op) {
        Some(VisitResult::Ok { version, .. }) => println!(
            "late visitor still loads v{version} from the visitor swarm — the site outlived its host"
        ),
        other => println!("late visit failed: {other:?}"),
    }

    // Fork (Beaker): a collaborator takes the zine in a new direction.
    let mut fork = SitePublisher::fork(b"splinter-group", &v1.signed.manifest);
    let forked = fork.publish(&[
        ("index.html", b"<h1>issue #1 remix</h1>".as_slice()),
        ("zine.css", b"body { font-family: monospace }".as_slice()),
        ("manifesto.txt", b"forking is freedom".as_slice()),
    ]);
    println!(
        "\nforked to new address {} (parent lineage: {})",
        forked.signed.manifest.site.short(),
        forked
            .signed
            .manifest
            .parent
            .map(|h| h.short())
            .unwrap_or_default()
    );

    // Merge the fork's additions back.
    let (merged, conflicts) = merge_files(&v1.signed.manifest, &forked.signed.manifest);
    println!(
        "merge: {} files, {} conflict(s):",
        merged.len(),
        conflicts.len()
    );
    for c in &conflicts {
        println!(
            "  CONFLICT {} (ours {}, theirs {})",
            c.path,
            c.ours.short(),
            c.theirs.short()
        );
    }
    println!("\n\"advocating openness at the code level\" (§3.4, Beaker).");
}

//! Quickstart: the whole democratized stack in one run.
//!
//! Alice publishes a signed site, registers `alice.agora` on the blockchain
//! (preorder → reveal → confirmations), stores her zone file in the DHT, and
//! Bob resolves the name end-to-end: chain → zone file → swarm → verified
//! site. Every hand-off is cryptographically checked.
//!
//! Run with: `cargo run --example quickstart`

use agora::stack::demo_full_stack;

fn main() {
    println!("agora quickstart — name → zone file → site, end to end\n");
    match demo_full_stack(2026, "alice.agora") {
        Ok(out) => {
            println!("registered + resolved : {}", out.name);
            println!("owning account        : {}", out.resolved_owner.short());
            println!("chain height          : {}", out.chain_height);
            println!("zone-file replicas    : {} DHT nodes", out.zone_replicas);
            println!("site version fetched  : v{}", out.site_version);
            println!("site bytes transferred: {}", out.site_bytes);
            println!("\nNo feudal lord was consulted in the serving of this page.");
        }
        Err(e) => {
            eprintln!("stack failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Scenario: a phone-class light client resolves names with only block
//! headers — Blockstack-style thin-client naming (§3.1), including what SPV
//! can and cannot promise.
//!
//! Run with: `cargo run --release --example spv_naming`

use agora::chain::{mine_block, ChainParams, Ledger};
use agora::crypto::{sha256, SimKeyPair};
use agora::naming::{build_name_proof, light_resolve, NameOp, NamingRules};
use agora::sim::SimRng;

fn main() {
    println!("— SPV naming: verify a name with kilobytes of state —\n");

    // A full node mines a chain carrying alice's registration + an update.
    let alice = SimKeyPair::from_seed(b"spv-alice");
    let mut ledger = Ledger::new(
        "spv-demo",
        ChainParams::test(),
        &[(alice.public().id(), 1000)],
    );
    let mut rng = SimRng::new(42);
    let rules = NamingRules {
        min_preorder_age: 1,
        ..NamingRules::default()
    };
    let txs = vec![
        NameOp::Preorder {
            commitment: NameOp::commitment("alice.agora", 7, &alice.public().id()),
        }
        .into_tx(&alice, 0, 1),
        NameOp::Register {
            name: "alice.agora".into(),
            salt: 7,
            zone_hash: sha256(b"zone-v1"),
        }
        .into_tx(&alice, 1, 1),
        NameOp::Update {
            name: "alice.agora".into(),
            zone_hash: sha256(b"zone-v2"),
        }
        .into_tx(&alice, 2, 1),
    ];
    for (i, tx) in txs.into_iter().enumerate() {
        let parent = ledger.best_tip();
        let bits = ledger.next_difficulty(&parent);
        let (block, _) = mine_block(
            parent,
            i as u64 + 1,
            sha256(b"miner"),
            vec![tx],
            (i as u64 + 1) * 1_000_000,
            bits,
            &mut rng,
        );
        ledger.submit_block(block).expect("valid");
    }
    println!(
        "full node: height {}, main chain {} bytes",
        ledger.best_height(),
        ledger.main_chain_bytes()
    );

    // The light client: headers only.
    let (record, header_bytes) = light_resolve(&ledger, &rules, "alice.agora").expect("resolves");
    println!("\nlight client resolved 'alice.agora':");
    println!("  owner      : {}", record.owner.short());
    println!(
        "  zone hash  : {} (the *updated* one)",
        record.zone_hash.short()
    );
    println!("  expires at : height {}", record.expires_at);
    println!(
        "  state held : {} bytes of headers ({}x smaller than the chain)",
        header_bytes,
        ledger.main_chain_bytes() / header_bytes.max(1)
    );

    // The proof itself, and the SPV caveat.
    let proof = build_name_proof(&ledger, "alice.agora");
    let proof_bytes: u64 = proof
        .ops
        .iter()
        .map(|p| p.tx.wire_size() + p.proof.wire_size())
        .sum();
    println!(
        "\nthe proof carried {} operations in {} bytes",
        proof.ops.len(),
        proof_bytes
    );
    println!(
        "\nSPV trust model: ownership cannot be forged (inclusion proofs +\n\
         signatures), but a malicious proof server can *omit* recent updates;\n\
         the resolver bounds that staleness against its header tip. See\n\
         agora-naming::light tests for both sides of the guarantee."
    );
}

//! Scenario: a Sia/Filecoin-style storage marketplace — contracts anchored
//! on the chain, sealed replicas, spacetime audits, settlement and slashing.
//!
//! Run with: `cargo run --release --example storage_marketplace`

use agora::chain::{ChainParams, Ledger, Transaction, TxPayload, APP_STORAGE};
use agora::crypto::{sha256, SimKeyPair};
use agora::sim::SimRng;
use agora::storage::{
    seal, sealed_commitment, Manifest, PosChallenge, PosResponse, ProofScheme, SealParams,
    SpacetimeRecord, StorageContract, TokenBank,
};

fn main() {
    let mut rng = SimRng::new(99);
    let client_keys = SimKeyPair::from_seed(b"marketplace-client");
    let client = client_keys.public().id();
    let provider = sha256(b"marketplace-provider");

    println!("— agora storage marketplace —\n");

    // The client's file, sealed by the provider into a unique replica.
    let file: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let params = SealParams::default();
    let replica_id = sha256(b"deal-1-replica-1");
    let sealed = seal(&file, &replica_id);
    let commitment = sealed_commitment(&sealed, &params);
    println!(
        "sealed replica: {} bytes, commitment {}",
        sealed.len(),
        commitment.object_id.short()
    );

    // The contract, anchored on-chain as an application payload.
    let contract = StorageContract {
        client,
        provider,
        object: commitment.object_id,
        size_bytes: file.len() as u64,
        price_per_window: 3,
        windows: 12,
        collateral: 50,
        proof: ProofScheme::ProofOfReplication,
    };
    let ledger = Ledger::new("marketplace", ChainParams::test(), &[(client, 1_000)]);
    let anchor_tx = Transaction::create(
        &client_keys,
        0,
        1,
        TxPayload::App {
            tag: APP_STORAGE,
            data: contract.encode(),
        },
    );
    println!(
        "contract {} anchored (tx {}, {} bytes on-chain)",
        contract.id().short(),
        anchor_tx.id().short(),
        anchor_tx.wire_size()
    );
    // (A real deployment mines it into a block; the encoding is what matters
    // here — decode proves the chain carries everything needed.)
    let decoded = StorageContract::decode(&contract.encode()).expect("decodes");
    assert_eq!(decoded, contract);
    let _ = &ledger;

    // Twelve audit windows: the provider answers sealed challenges; we make
    // it miss two windows (simulated outage).
    let (_, sealed_chunks) = Manifest::build(&sealed, params.sealed_chunk_size);
    let mut record = SpacetimeRecord::default();
    for window in 0..contract.windows {
        let offline = window == 5 || window == 9;
        if offline {
            record.record(false);
            continue;
        }
        let idx = rng.below(commitment.chunk_count() as u64) as u32;
        let ch = PosChallenge {
            object: commitment.object_id,
            index: idx,
            nonce: rng.next_u64(),
        };
        let resp = PosResponse::build(&ch, &commitment, sealed_chunks[idx as usize].clone())
            .expect("chunk held");
        record.record(resp.verify(&ch));
    }
    println!(
        "audits: {}/{} windows passed ({:.0}% uptime)",
        (record.uptime_fraction() * record.window_count() as f64).round(),
        record.window_count(),
        record.uptime_fraction() * 100.0
    );

    // Settlement: earnings per passed window; collateral slashed if the
    // record breaches the grace allowance.
    let mut bank = TokenBank::new();
    let (earned, slashed) = contract.settle(&record, 1, &mut bank);
    println!("\nsettlement (grace = 1 missed window):");
    println!("  provider earned  : {earned} tokens");
    println!("  collateral slashed: {slashed} tokens (2 misses > grace)");
    println!("  provider net     : {}", bank.balance(&provider));
    println!("  client net       : {}", bank.balance(&client));
    assert_eq!(bank.total(), 0, "closed system");
    println!("\nIncentives make selfish nodes store other people's bytes (§3.3).");
}

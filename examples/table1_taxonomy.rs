//! Regenerate Table 1 (decentralization problems × projects) from the live
//! registry — every project is backed by the implementing module.
//!
//! Run with: `cargo run --example table1_taxonomy`

fn main() {
    println!("{}", agora::t1_taxonomy());
    println!("\nPer-project implementation map:");
    for e in agora::table1_registry() {
        println!("  {:<22} → {}", e.name, e.implemented_by);
    }
}

//! Regenerate Table 2 (storage systems: blockchain usage × incentive
//! scheme) and exercise every profile's proof mechanism.
//!
//! Run with: `cargo run --release --example table2_storage`

fn main() {
    println!("{}", agora::t2_storage_systems());
}

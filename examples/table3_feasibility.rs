//! Regenerate Table 3 (cloud vs user-device capacity) with the paper's
//! exact assumptions, plus sufficiency ratios, duty-cycle discounts, and
//! sensitivity sweeps.
//!
//! Run with: `cargo run --example table3_feasibility`

fn main() {
    println!("{}", agora::t3_feasibility());
}

// Property tests need the external `proptest` crate, which hermetic
// (offline) builds cannot fetch. To run them: re-add `proptest = "1"` to this
// crate's [dev-dependencies] and build with RUSTFLAGS="--cfg agora_proptest".
#![cfg(agora_proptest)]

//! Cross-crate property tests: invariants that only hold if multiple crates
//! agree with each other (proptest over the public APIs).

use agora::chain::{ChainParams, Ledger, Transaction, TxPayload};
use agora::crypto::{sha256, Hash256, MerkleTree, SimKeyPair, WotsKeyPair};
use agora::naming::{NameDb, NameOp, NamingRules};
use agora::storage::{seal, unseal, Manifest, ReedSolomon};
use agora::web::SitePublisher;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload stored through RS + chunking round-trips, for arbitrary
    /// data and any valid (k, m) in a practical range.
    #[test]
    fn erasure_then_chunk_round_trip(
        data in proptest::collection::vec(any::<u8>(), 1..5_000),
        k in 1usize..8,
        m in 0usize..6,
    ) {
        let rs = ReedSolomon::new(k, m).expect("params valid");
        let shards = rs.encode(&data);
        // Drop up to m shards (the last m), reconstruct from the first k.
        let avail: Vec<(usize, Vec<u8>)> =
            (0..k).map(|i| (i, shards[i].clone())).collect();
        let got = rs.reconstruct(&avail, data.len()).expect("reconstructs");
        prop_assert_eq!(&got, &data);
        // Chunk + manifest round-trip on the same data.
        let (manifest, chunks) = Manifest::build(&data, 512);
        prop_assert_eq!(manifest.assemble(&chunks).expect("assembles"), data);
    }

    /// Sealing is a bijection for every replica id and data length, and the
    /// sealed commitment differs across replica ids (no dedup).
    #[test]
    fn sealing_bijective_and_replica_unique(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        tag_a in any::<u64>(),
        tag_b in any::<u64>(),
    ) {
        let id_a = sha256(&tag_a.to_be_bytes());
        let id_b = sha256(&tag_b.to_be_bytes());
        let sealed_a = seal(&data, &id_a);
        prop_assert_eq!(unseal(&sealed_a, &id_a), data.clone());
        if tag_a != tag_b && data.len() >= 16 {
            let sealed_b = seal(&data, &id_b);
            prop_assert_ne!(sealed_a, sealed_b);
        }
    }

    /// A signed site manifest verifies iff untampered, for arbitrary file
    /// sets.
    #[test]
    fn site_manifests_verify_iff_untouched(
        files in proptest::collection::vec(
            ("[a-z]{1,8}\\.[a-z]{2,3}", proptest::collection::vec(any::<u8>(), 0..500)),
            1..6
        ),
        flip in any::<u8>(),
    ) {
        let mut publisher = SitePublisher::new(b"prop-site");
        let refs: Vec<(&str, &[u8])> = files
            .iter()
            .map(|(p, d)| (p.as_str(), d.as_slice()))
            .collect();
        let bundle = publisher.publish(&refs);
        prop_assert!(bundle.signed.verify());
        let mut evil = bundle.signed.clone();
        evil.manifest.version = evil.manifest.version.wrapping_add(1 + (flip as u64 % 7));
        prop_assert!(!evil.verify());
    }

    /// Name-state machine: whoever registers first (with a valid preorder)
    /// owns the name, regardless of op interleavings afterwards by others.
    #[test]
    fn first_valid_register_wins(
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
        later_ops in 0u8..4,
    ) {
        let rules = NamingRules { min_preorder_age: 1, preorder_ttl: 50, expiry_blocks: 1000, preorder_required: true };
        let alice = sha256(b"prop-alice");
        let bob = sha256(b"prop-bob");
        let mut db = NameDb::default();
        db.apply(NameOp::Preorder { commitment: NameOp::commitment("n.x", salt_a, &alice) }, alice, 1, &rules);
        db.apply(NameOp::Preorder { commitment: NameOp::commitment("n.x", salt_b, &bob) }, bob, 1, &rules);
        db.apply(NameOp::Register { name: "n.x".into(), salt: salt_a, zone_hash: sha256(b"a") }, alice, 3, &rules);
        db.apply(NameOp::Register { name: "n.x".into(), salt: salt_b, zone_hash: sha256(b"b") }, bob, 4, &rules);
        for i in 0..later_ops {
            db.apply(NameOp::Update { name: "n.x".into(), zone_hash: sha256(&[i]) }, bob, 5 + i as u64, &rules);
            db.apply(NameOp::Transfer { name: "n.x".into(), new_owner: bob }, bob, 6 + i as u64, &rules);
        }
        let rec = db.resolve("n.x", 20).expect("registered");
        prop_assert_eq!(rec.owner, alice, "bob must never wrestle the name away");
    }

    /// Merkle trees built by different crates over the same leaves agree,
    /// and proofs transfer.
    #[test]
    fn merkle_proofs_transfer(leaves in proptest::collection::vec(any::<u64>(), 1..40), pick in any::<prop::sample::Index>()) {
        let hashes: Vec<Hash256> = leaves.iter().map(|v| sha256(&v.to_be_bytes())).collect();
        let t1 = MerkleTree::from_leaf_hashes(hashes.clone());
        let t2 = MerkleTree::from_leaf_hashes(hashes.clone());
        prop_assert_eq!(t1.root(), t2.root());
        let i = pick.index(hashes.len());
        let proof = t1.prove(i).expect("in range");
        prop_assert!(proof.verify(hashes[i], t2.root()));
    }
}

#[test]
fn chain_accepts_naming_payloads_and_namedb_sees_them() {
    // A non-proptest cross-crate check: naming ops mined into real blocks
    // surface in the NameDb exactly once each.
    use agora::chain::mine_block;
    use agora::sim::SimRng;

    let alice = SimKeyPair::from_seed(b"xc-alice");
    let mut ledger = Ledger::new("xc", ChainParams::test(), &[(alice.public().id(), 1000)]);
    let mut rng = SimRng::new(5);
    let rules = NamingRules {
        min_preorder_age: 1,
        ..NamingRules::default()
    };

    let pre = NameOp::Preorder {
        commitment: NameOp::commitment("xc.name", 9, &alice.public().id()),
    }
    .into_tx(&alice, 0, 1);
    let reg = NameOp::Register {
        name: "xc.name".into(),
        salt: 9,
        zone_hash: sha256(b"zone"),
    }
    .into_tx(&alice, 1, 1);

    let miner = sha256(b"xc-miner");
    for (i, tx) in [pre, reg].into_iter().enumerate() {
        let parent = ledger.best_tip();
        let bits = ledger.next_difficulty(&parent);
        let (block, _) = mine_block(
            parent,
            i as u64 + 1,
            miner,
            vec![tx],
            (i as u64 + 1) * 1_000_000,
            bits,
            &mut rng,
        );
        ledger.submit_block(block).expect("valid block");
    }
    let db = NameDb::from_ledger(&ledger, &rules);
    let rec = db
        .resolve("xc.name", ledger.best_height())
        .expect("resolves");
    assert_eq!(rec.owner, alice.public().id());
    assert_eq!(rec.zone_hash, sha256(b"zone"));
    assert!(db.rejected.is_empty(), "{:?}", db.rejected);
}

#[test]
fn wots_can_sign_chain_transactions_out_of_band() {
    // The hash-based scheme signs arbitrary bytes — here a chain tx id —
    // demonstrating the low-volume real-crypto path (DESIGN.md §5).
    let alice = SimKeyPair::from_seed(b"wots-alice");
    let tx = Transaction::create(
        &alice,
        0,
        1,
        TxPayload::Transfer {
            to: sha256(b"bob"),
            amount: 1,
        },
    );
    let mut wots = WotsKeyPair::generate(sha256(b"wots-seed"), 2);
    let pk = wots.public();
    let sig = wots.sign(tx.id().as_bytes()).expect("capacity");
    assert!(pk.verify(tx.id().as_bytes(), &sig));
    assert!(!pk.verify(sha256(b"other").as_bytes(), &sig));
}

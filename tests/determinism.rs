//! Determinism: the same seed must produce bit-identical experiment results
//! — the property every reported number in EXPERIMENTS.md depends on.

use agora::experiments::{
    e10_federated_failover, e11_guerrilla_relay, e12_moderation_tension, e14_usenet_collapse,
    e2_naming_attacks, e3_groupcomm_availability, e6_durability, e7_web_availability,
};

#[test]
fn e2_is_deterministic() {
    let (a, _) = e2_naming_attacks(500);
    let (b, _) = e2_naming_attacks(500);
    assert_eq!(a.front_run_no_preorder, b.front_run_no_preorder);
    assert_eq!(a.rewrite_curve, b.rewrite_curve);
}

#[test]
fn e3_is_deterministic() {
    let (a, _) = e3_groupcomm_availability(501, 0.2);
    let (b, _) = e3_groupcomm_availability(501, 0.2);
    assert_eq!(a.centralized.delivery_rate, b.centralized.delivery_rate);
    assert_eq!(a.replicated.read_success, b.replicated.read_success);
    assert_eq!(a.social.read_success, b.social.read_success);
}

#[test]
fn e6_is_deterministic() {
    let (a, _) = e6_durability(502);
    let (b, _) = e6_durability(502);
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.2, rb.2, "{} survival differs", ra.0);
        assert_eq!(ra.3, rb.3, "{} repair traffic differs", ra.0);
    }
}

#[test]
fn e7_is_deterministic() {
    let (a, _) = e7_web_availability(503);
    let (b, _) = e7_web_availability(503);
    assert_eq!(a.survival_by_seeders, b.survival_by_seeders);
}

#[test]
fn e10_e11_are_deterministic() {
    let (a, _) = e10_federated_failover(504);
    let (b, _) = e10_federated_failover(504);
    assert_eq!(a.replicated_with_failover, b.replicated_with_failover);
    assert_eq!(a.failovers, b.failovers);
    let (a, _) = e11_guerrilla_relay(505);
    let (b, _) = e11_guerrilla_relay(505);
    assert_eq!(a.relay_owner_offline, b.relay_owner_offline);
    assert_eq!(a.relay_metadata, b.relay_metadata);
}

#[test]
fn e12_e14_are_deterministic() {
    let (a, _) = e12_moderation_tension(506);
    let (b, _) = e12_moderation_tension(506);
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra, rb);
    }
    let (a, _) = e14_usenet_collapse(507);
    let (b, _) = e14_usenet_collapse(507);
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.replicated_bytes, rb.replicated_bytes);
        assert_eq!(
            ra.replicated_store_per_instance,
            rb.replicated_store_per_instance
        );
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let (a, _) = e2_naming_attacks(600);
    let (b, _) = e2_naming_attacks(601);
    // Monte-Carlo rates on different streams should not all coincide.
    let same = a
        .rewrite_curve
        .iter()
        .zip(b.rewrite_curve.iter())
        .filter(|(x, y)| x.1 == y.1)
        .count();
    assert!(
        same < a.rewrite_curve.len(),
        "suspiciously identical across seeds"
    );
}

#[test]
fn harness_metric_adapters_are_deterministic() {
    // The harness consumes experiments through the `*_metrics` adapters; the
    // flattened registry (counters + gauges) must be reproducible verbatim.
    use agora::experiments::{e13_metrics, e1_metrics, e4_metrics};
    let render = |m: &agora::sim::Metrics| format!("{m}");
    let a = e1_metrics(508);
    let b = e1_metrics(508);
    assert_eq!(render(&a), render(&b));
    assert!(render(&a).contains("e1.latency_factor"));
    let a = e4_metrics(509);
    let b = e4_metrics(509);
    assert_eq!(render(&a), render(&b));
    // e13 is analytic: any seed yields the same economics.
    assert_eq!(render(&e13_metrics(0)), render(&e13_metrics(12345)));
}

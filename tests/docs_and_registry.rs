//! Documentation/registry consistency: the repo's promises hold.
//!
//! These tests read DESIGN.md and EXPERIMENTS.md from the workspace root and
//! verify that every experiment the harness implements is documented, and
//! that the tables the docs promise really regenerate.

use std::path::Path;

fn read_doc(name: &str) -> String {
    // Integration tests run with the package root as cwd (crates/core), so
    // walk up to the workspace root.
    let candidates = [
        Path::new(name).to_path_buf(),
        Path::new("../..").join(name),
        Path::new("..").join(name),
    ];
    for c in candidates {
        if let Ok(s) = std::fs::read_to_string(&c) {
            return s;
        }
    }
    panic!("cannot locate {name} from {:?}", std::env::current_dir());
}

#[test]
fn every_experiment_is_documented() {
    let experiments = read_doc("EXPERIMENTS.md");
    for id in [
        "T1", "T2", "T3", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
        "E12", "E13", "E14",
    ] {
        assert!(
            experiments.contains(&format!("## {id} "))
                || experiments.contains(&format!("## {id}—"))
                || experiments.contains(&format!("## {id} —")),
            "EXPERIMENTS.md missing section for {id}"
        );
    }
}

#[test]
fn design_lists_every_crate() {
    let design = read_doc("DESIGN.md");
    for krate in [
        "agora-sim",
        "agora-crypto",
        "agora-chain",
        "agora-dht",
        "agora-naming",
        "agora-storage",
        "agora-comm",
        "agora-web",
        "agora-feasibility",
        "agora-bench",
    ] {
        assert!(design.contains(krate), "DESIGN.md missing {krate}");
    }
    // The substitution policy section must exist (the repro ground rules).
    assert!(design.contains("Substitutions"));
    assert!(design.contains("Zooko"));
}

#[test]
fn experiments_doc_numbers_match_t3_exactly() {
    // The one table whose numbers must match the paper digit-for-digit.
    let doc = read_doc("EXPERIMENTS.md");
    let t3 = agora::t3_feasibility();
    for v in ["200", "5000", "400", "500", "80", "210"] {
        assert!(t3.body.contains(v), "harness lost Table 3 value {v}");
        assert!(doc.contains(v), "EXPERIMENTS.md lost Table 3 value {v}");
    }
}

#[test]
fn readme_quickstart_commands_reference_real_examples() {
    let readme = read_doc("README.md");
    for example in [
        "quickstart",
        "table1_taxonomy",
        "table2_storage",
        "table3_feasibility",
        "experiments",
        "community_exodus",
        "storage_marketplace",
        "hostless_site",
    ] {
        assert!(
            readme.contains(example),
            "README.md missing example {example}"
        );
    }
}

#[test]
fn table1_registry_covers_paper_categories_fully() {
    use agora::taxonomy::{table1_registry, Problem};
    let reg = table1_registry();
    // Paper row contents, spot-checked against the registry.
    let naming: Vec<&str> = reg
        .iter()
        .filter(|e| e.problem == Problem::Naming)
        .map(|e| e.name)
        .collect();
    assert_eq!(naming, vec!["Namecoin", "Emercoin", "Blockstack"]);
    let web: Vec<&str> = reg
        .iter()
        .filter(|e| e.problem == Problem::WebApplications)
        .map(|e| e.name)
        .collect();
    assert!(web.contains(&"Beaker"));
    assert!(web.contains(&"ZeroNet"));
}

//! Integration: the composed stack spanning chain, naming, DHT and swarm.

use agora::crypto::SimKeyPair;
use agora::stack::{demo_full_stack, StackError};

#[test]
fn names_resolve_to_verified_sites() {
    let out = demo_full_stack(101, "collective.agora").expect("stack works");
    assert_eq!(out.name, "collective.agora");
    assert_eq!(
        out.resolved_owner,
        SimKeyPair::from_seed(b"alice-stack").public().id(),
        "on-chain owner is the site keyholder"
    );
    assert!(out.zone_replicas >= 2, "zone file replicated in the DHT");
    assert_eq!(out.site_version, 1);
    assert!(out.site_bytes > 0);
}

#[test]
fn different_seeds_still_succeed() {
    for seed in [102, 203, 304] {
        let name = format!("seed-{seed}.agora");
        let out = demo_full_stack(seed, &name);
        assert!(out.is_ok(), "seed {seed}: {out:?}");
    }
}

#[test]
fn stack_error_display() {
    // The error type is part of the public API; keep Display stable-ish.
    let e = StackError::ZoneHashMismatch;
    assert_eq!(format!("{e}"), "ZoneHashMismatch");
}
